"""Tests for the ``repro-lint`` rule pack (``repro.analysis``).

Each seeded fixture under ``tests/fixtures/lint/bad/`` violates exactly
one rule; the ``good/`` mirror is the clean counterpart.  Fixture paths
embed a ``repro/<subsystem>/`` prefix so the path-scoped rules engage
exactly as they do on the real tree.
"""

import json
import pathlib
import textwrap

import pytest

from repro.analysis import lint_paths, render_json
from repro.obs.trace import EVENT_NAMES
from repro.tools import lint_tool

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures" / "lint"
SRC = pathlib.Path(__file__).resolve().parents[1] / "src"

#: fixture file (path under bad/) -> expected (code, line) pairs, in
#: report order.  Line numbers are pinned to the committed fixtures.
EXPECTED_BAD = {
    "repro/core/badsuppress.py": [("DCUP001", 11), ("DCUP008", 11)],
    "repro/core/fsm.py": [("DCUP013", 3), ("DCUP013", 9)],
    "repro/core/fsmdispatch.py": [("DCUP013", 22)],
    "repro/core/tracename.py": [("DCUP003", 13)],
    "repro/core/unseeded.py": [("DCUP002", 7), ("DCUP002", 11)],
    "repro/core/wallclock.py": [("DCUP001", 8), ("DCUP001", 9)],
    "repro/net/blocking.py": [("DCUP009", 7), ("DCUP009", 8),
                              ("DCUP009", 9)],
    "repro/net/leaks.py": [("DCUP012", 7), ("DCUP012", 12)],
    "repro/net/unguarded.py": [("DCUP005", 11), ("DCUP005", 12),
                               ("DCUP005", 13)],
    "repro/obs/load.py": [("DCUP005", 10), ("DCUP005", 11)],
    "repro/obs/streaming.py": [("DCUP005", 10), ("DCUP005", 11)],
    "repro/server/dispatch.py": [("DCUP007", 7)],
    "repro/sim/affinity.py": [("DCUP011", 15), ("DCUP011", 25),
                              ("DCUP011", 28)],
    "repro/sim/fastreplay.py": [("DCUP006", 7), ("DCUP006", 12)],
    "repro/sim/columnar.py": [("DCUP006", 7), ("DCUP006", 12)],
    "repro/sim/shard.py": [("DCUP006", 5)],
    "repro/sim/unawaited.py": [("DCUP010", 10)],
}


def _by_fixture(findings):
    """Group findings by their path relative to the fixture root."""
    grouped = {}
    for finding in findings:
        parts = pathlib.PurePosixPath(finding.path).parts
        key = "/".join(parts[-3:])
        grouped.setdefault(key, []).append((finding.code, finding.line))
    return grouped


class TestSeededFixtures:
    def test_bad_tree_surfaces_exactly_the_seeded_codes(self):
        findings = lint_paths([FIXTURES / "bad"])
        assert _by_fixture(findings) == EXPECTED_BAD

    def test_good_tree_is_clean(self):
        assert lint_paths([FIXTURES / "good"]) == []

    def test_malformed_suppression_does_not_hide_the_finding(self):
        findings = lint_paths([FIXTURES / "bad" / "repro" / "core"
                               / "badsuppress.py"])
        codes = sorted(f.code for f in findings)
        assert codes == ["DCUP001", "DCUP008"]


class TestRegistryCoverage:
    """DCUP004 is cross-file: it fires only when the scan includes the
    file defining ``EVENT_NAMES`` and some registry name has no emitter
    anywhere in the scanned tree."""

    def _build_tree(self, root, emitted_names):
        obs = root / "repro" / "obs"
        tools = root / "repro" / "tools"
        obs.mkdir(parents=True)
        tools.mkdir(parents=True)
        (obs / "trace.py").write_text("EVENT_NAMES = frozenset()\n")
        lines = ["def emit_all(bus):"]
        for name in sorted(emitted_names):
            lines.append(f"    bus.emit({name!r})")
        if len(lines) == 1:
            lines.append("    pass")
        (tools / "emitall.py").write_text("\n".join(lines) + "\n")

    def test_missing_emitter_yields_one_finding(self, tmp_path):
        missing = sorted(EVENT_NAMES)[0]
        self._build_tree(tmp_path, EVENT_NAMES - {missing})
        findings = lint_paths([tmp_path])
        assert len(findings) == 1
        finding = findings[0]
        assert finding.code == "DCUP004"
        assert finding.path.endswith("repro/obs/trace.py")
        assert finding.line == 1
        assert missing in finding.message

    def test_full_coverage_is_clean(self, tmp_path):
        self._build_tree(tmp_path, EVENT_NAMES)
        assert lint_paths([tmp_path]) == []

    def test_no_registry_in_scan_means_no_coverage_claims(self, tmp_path):
        tools = tmp_path / "repro" / "tools"
        tools.mkdir(parents=True)
        (tools / "emitone.py").write_text(
            "def emit_one(bus):\n    bus.emit('lease.grant')\n")
        assert lint_paths([tmp_path]) == []


class TestSuppression:
    def test_file_level_suppression_covers_the_whole_file(self, tmp_path):
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True)
        (core / "clocky.py").write_text(textwrap.dedent("""\
            # repro-lint: disable-file=DCUP001 -- test fixture needs wall time
            import time


            def first():
                return time.time()


            def second():
                return time.time()
            """))
        assert lint_paths([tmp_path]) == []

    def test_line_suppression_only_hides_the_named_code(self, tmp_path):
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True)
        (core / "mixed.py").write_text(textwrap.dedent("""\
            import random
            import time


            def noisy():
                t = time.time()  # repro-lint: disable=DCUP001 -- deliberate
                return t + random.random()
            """))
        findings = lint_paths([tmp_path])
        assert [f.code for f in findings] == ["DCUP002"]


class TestSelection:
    def test_select_filters_report_not_rule_execution(self):
        findings = lint_paths([FIXTURES / "bad"], select=["DCUP006"])
        assert [f.code for f in findings] == ["DCUP006"] * 5

    def test_select_via_cli(self, capsys):
        rc = lint_tool.main(["check", str(FIXTURES / "bad"),
                             "--select", "DCUP007", "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["code"] == "DCUP007"


class TestOutputs:
    def test_json_report_is_byte_stable(self):
        findings = lint_paths([FIXTURES / "bad"])
        first = render_json(findings)
        second = render_json(lint_paths([FIXTURES / "bad"]))
        assert first == second
        payload = json.loads(first)
        assert payload["version"] == 1
        assert payload["count"] == len(payload["findings"])
        keys = [(f["path"], f["line"], f["col"], f["code"])
                for f in payload["findings"]]
        assert keys == sorted(keys)

    def test_cli_exit_codes(self, capsys):
        assert lint_tool.main(["check", str(FIXTURES / "bad")]) == 1
        assert lint_tool.main(["check", str(FIXTURES / "good")]) == 0
        out = capsys.readouterr().out
        assert "repro-lint: 0 findings" in out

    def test_rules_catalogue_lists_every_code(self, capsys):
        assert lint_tool.main(["rules"]) == 0
        out = capsys.readouterr().out
        for number in range(1, 14):
            assert f"DCUP{number:03d}" in out


class TestSelfApplication:
    def test_repo_source_tree_lints_clean(self):
        assert lint_paths([SRC / "repro"]) == []


@pytest.mark.parametrize("bad_name", ["DCUP1", "XCUP001", "dcup001"])
def test_invalid_codes_in_directives_are_malformed(tmp_path, bad_name):
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    (core / "typo.py").write_text(
        f"x = 1  # repro-lint: disable={bad_name} -- oops\n")
    findings = lint_paths([tmp_path])
    assert [f.code for f in findings] == ["DCUP008"]
