"""The live transport backend: LiveClock + AioNetwork on real sockets.

Everything here runs over actual loopback UDP/TCP — the suite skips as
a whole on platforms where that is unavailable (the CI live job probes
the same predicate).  The tests mirror the simulated-network suite
where the contract is shared, and add the live-only concerns: real
ephemeral ports, the asyncio reader path, connection pooling, and the
quiescence-based ``run()``.
"""

from __future__ import annotations

import socket as socket_module

import pytest

from repro.dnslib import A, RRSet, RRType
from repro.net import (
    AioNetwork,
    Host,
    LiveClock,
    NetworkError,
    RetryPolicy,
    SimulationError,
    ephemeral_port,
    loopback_available,
)
from repro.server.push import PushService, PushSubscriber
from repro.zone import load_zone
from tests.conftest import EXAMPLE_ZONE_TEXT

pytestmark = pytest.mark.skipif(
    not loopback_available(),
    reason="loopback UDP unavailable on this platform")


@pytest.fixture
def clock():
    return LiveClock()


@pytest.fixture
def net(clock):
    network = AioNetwork(clock)
    yield network
    network.close()
    clock.loop.close()


def _echo_socket(host, port=53):
    """A socket answering every query with the QR bit flipped on."""
    sock = host.socket(port)

    def handler(payload, src, dst):
        response = bytearray(payload)
        response[2] |= 0x80
        sock.send(bytes(response), src)

    sock.on_receive(handler)
    return sock


# -- LiveClock scheduling ------------------------------------------------------


class TestLiveClock:
    def test_now_starts_near_zero_and_is_monotonic(self, clock):
        first = clock.now
        assert 0.0 <= first < 1.0
        assert clock.now >= first

    def test_timers_fire_in_order(self, clock):
        fired = []
        clock.schedule(0.02, lambda: fired.append("late"))
        clock.schedule(0.0, lambda: fired.append("early"))
        assert clock.pending == 2
        clock.run()
        assert fired == ["early", "late"]
        assert clock.pending == 0
        assert clock.events_processed == 2

    def test_cancel_prevents_firing(self, clock):
        fired = []
        handle = clock.schedule(0.01, lambda: fired.append("cancelled"))
        clock.schedule(0.02, lambda: fired.append("kept"))
        handle.cancel()
        assert handle.cancelled
        handle.cancel()  # cancelling twice is harmless
        clock.run()
        assert fired == ["kept"]

    def test_daemon_timers_never_hold_off_quiescence(self, clock):
        fired = []
        clock.schedule(30.0, lambda: fired.append("daemon"), daemon=True)
        clock.schedule(0.01, lambda: fired.append("work"))
        clock.run()  # returns promptly: only the daemon timer remains
        assert fired == ["work"]
        assert clock.pending == 1

    def test_negative_delay_rejected(self, clock):
        with pytest.raises(SimulationError):
            clock.schedule(-0.5, lambda: None)
        with pytest.raises(SimulationError):
            clock.schedule_at(clock.now - 1.0, lambda: None)

    def test_run_for_advances_wall_time(self, clock):
        fired = []
        clock.schedule(0.01, lambda: fired.append(1))
        before = clock.now
        clock.run_for(0.05)
        assert fired == [1]
        assert clock.now - before >= 0.05

    def test_observer_called_per_event(self, clock):
        seen = []
        clock.observer = seen.append
        clock.schedule(0.0, lambda: None)
        clock.run()
        assert len(seen) == 1


# -- ephemeral port helper -----------------------------------------------------


def test_ephemeral_port_is_free_and_distinct():
    udp = ephemeral_port("udp")
    tcp = ephemeral_port("tcp")
    assert 0 < udp <= 65535 and 0 < tcp <= 65535
    # The returned UDP port is actually bindable right now.
    probe = socket_module.socket(socket_module.AF_INET,
                                 socket_module.SOCK_DGRAM)
    try:
        probe.bind(("127.0.0.1", udp))
    finally:
        probe.close()


# -- datagram service ----------------------------------------------------------


class TestLiveDatagrams:
    def test_request_response_roundtrip(self, clock, net):
        server = Host(net, "192.168.1.10")
        client = Host(net, "10.0.0.1")
        _echo_socket(server)
        got = []
        client.socket().request(
            bytes([0x12, 0x34, 0x00, 0x00]) + b"q", ("192.168.1.10", 53),
            0x1234, lambda payload, src: got.append((payload, src)),
            retry=RetryPolicy(initial_timeout=1.0, max_attempts=2))
        clock.run()
        assert got and got[0][0][2] & 0x80
        assert got[0][1] == ("192.168.1.10", 53)
        assert net.stats.datagrams_sent == 2
        assert net.stats.datagrams_delivered == 2

    def test_logical_endpoints_survive_real_port_mapping(self, clock, net):
        """Sources are translated back to logical (addr, port) pairs."""
        receiver = Host(net, "192.0.2.1")
        sender = Host(net, "192.0.2.2")
        seen = []
        rsock = receiver.socket(5353)
        rsock.on_receive(lambda payload, src, dst: seen.append((src, dst)))
        sender.socket(7000).send(b"\x00\x01\x00\x00", ("192.0.2.1", 5353))
        clock.run()
        assert seen == [(("192.0.2.2", 7000), ("192.0.2.1", 5353))]

    def test_timeout_delivers_none_none(self, clock, net):
        client = Host(net, "10.0.0.1")
        got = []
        client.socket().request(
            b"\x00\x07\x00\x00", ("203.0.113.9", 53), 7,
            lambda payload, src: got.append((payload, src)),
            retry=RetryPolicy(initial_timeout=0.02, max_attempts=3))
        clock.run()
        assert got == [(None, None)]
        # Every attempt hit an unbound endpoint and was accounted.
        assert net.stats.datagrams_unreachable == 3

    def test_retransmissions_counted_via_on_attempt(self, clock, net):
        client = Host(net, "10.0.0.1")
        attempts = []
        client.socket().request(
            b"\x00\x08\x00\x00", ("203.0.113.9", 53), 8,
            lambda payload, src: None,
            retry=RetryPolicy(initial_timeout=0.02, max_attempts=2),
            on_attempt=attempts.append)
        clock.run()
        assert attempts == [1, 2]

    def test_oversize_datagram_rejected(self, clock, net):
        host = Host(net, "10.0.0.1")
        sock = host.socket(4000)
        with pytest.raises(NetworkError):
            sock.send(b"x" * 600, ("10.0.0.2", 53))

    def test_double_bind_rejected(self, clock, net):
        host = Host(net, "10.0.0.1")
        host.socket(4001)
        with pytest.raises(NetworkError):
            net.bind(("10.0.0.1", 4001), lambda *a: None)

    def test_link_shaping_refused(self, clock, net):
        with pytest.raises(NetworkError):
            net.set_link_profile("10.0.0.1", "10.0.0.2", None)

    def test_handler_errors_surface_from_run(self, clock, net):
        server = Host(net, "10.0.0.1")
        sock = server.socket(4002)

        def exploding(payload, src, dst):
            raise RuntimeError("handler blew up")

        sock.on_receive(exploding)
        Host(net, "10.0.0.2").socket(4003).send(b"\x00\x01\x00\x00",
                                                ("10.0.0.1", 4002))
        with pytest.raises(RuntimeError, match="handler blew up"):
            clock.run()


# -- reliable streams and the connection pool ---------------------------------


class TestLiveStreams:
    def test_stream_roundtrip_and_pool_reuse(self, clock, net):
        server = Host(net, "192.168.1.10")
        client = Host(net, "10.0.0.1")
        ssock = server.socket(53)

        def stream_echo(payload, src, dst):
            response = bytearray(payload)
            response[2] |= 0x80
            ssock.send_stream(bytes(response), src)

        ssock.on_receive_stream(stream_echo)
        csock = client.socket()
        got = []
        for request_id in (0x0101, 0x0102, 0x0103):
            csock.request_stream(
                request_id.to_bytes(2, "big") + b"\x00\x00",
                ("192.168.1.10", 53), request_id,
                lambda payload, src: got.append(payload), timeout=5.0)
            clock.run()
        assert len(got) == 3 and all(p is not None for p in got)
        # One connection per direction, reused for messages 2 and 3.
        assert net.pool.opened == 2
        assert net.pool.reused == 4
        assert net.stats.stream_messages == 6

    def test_stream_to_unbound_endpoint_is_dropped(self, clock, net):
        client = Host(net, "10.0.0.1")
        got = []
        client.socket().request_stream(
            b"\x00\x09\x00\x00", ("203.0.113.9", 53), 9,
            lambda payload, src: got.append((payload, src)), timeout=0.05)
        clock.run()
        assert got == [(None, None)]

    def test_push_service_over_live_tcp(self, clock, net):
        """RFC 8765-style push runs unmodified over pooled live TCP."""
        zone = load_zone(EXAMPLE_ZONE_TEXT)
        server_host = Host(net, "192.168.1.10")
        cache_host = Host(net, "192.168.1.21")
        service = PushService(server_host.socket(53), [zone],
                              keepalive_interval=None)
        applied = []
        subscriber = PushSubscriber(
            cache_host.socket(5353),
            lambda name, rrtype, rrsets: applied.append((name, rrsets)))
        service.subscribe(subscriber.endpoint, "www.example.com.", RRType.A)
        zone.put_rrset(RRSet("www.example.com.", RRType.A, 300,
                             [A("172.16.0.1")]))
        clock.run()
        assert service.stats.pushes_sent == 1
        assert subscriber.stats.pushes_received == 1
        assert applied and applied[0][1][0].rdatas == (A("172.16.0.1"),)


# -- failure-edge hygiene (DCUP012 regressions) --------------------------------


class TestSocketCleanupOnFailure:
    """A port constructor whose bind/listen raises must close the
    descriptor it created — the real findings DCUP009–012 surfaced on
    this file, pinned here against regression."""

    @pytest.fixture
    def created(self, monkeypatch):
        """Patch socket.socket with a recording subclass."""
        sockets = []

        class RecordingSocket(socket_module.socket):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                sockets.append(self)

        monkeypatch.setattr(socket_module, "socket", RecordingSocket)
        return sockets

    def _unbindable(self, clock):
        # TEST-NET-3 is not a local interface: bind() raises EADDRNOTAVAIL.
        return AioNetwork(clock, interface="203.0.113.7")

    def test_udp_bind_failure_closes_descriptor(self, clock, created):
        network = self._unbindable(clock)
        with pytest.raises(OSError):
            network.bind(("10.0.0.1", 53), lambda *a: None)
        assert created and all(s.fileno() == -1 for s in created)
        network.close()
        clock.loop.close()

    def test_stream_bind_failure_closes_descriptor(self, clock, created):
        network = self._unbindable(clock)
        with pytest.raises(OSError):
            network.bind_stream(("10.0.0.1", 53), lambda *a: None)
        assert created and all(s.fileno() == -1 for s in created)
        network.close()
        clock.loop.close()

    def test_exposition_bind_failure_closes_descriptor(self, clock, created):
        network = self._unbindable(clock)
        with pytest.raises(OSError):
            network.expose_text(lambda: "")
        assert created and all(s.fileno() == -1 for s in created)
        network.close()
        clock.loop.close()


# -- lifecycle -----------------------------------------------------------------


class TestLiveLifecycle:
    def test_unbind_releases_real_socket(self, clock, net):
        host = Host(net, "10.0.0.1")
        sock = host.socket(4100)
        assert net.is_bound(("10.0.0.1", 4100))
        sock.close()
        assert not net.is_bound(("10.0.0.1", 4100))
        # A fresh bind of the same logical endpoint works immediately.
        host.socket(4100)

    def test_close_is_idempotent(self, clock):
        network = AioNetwork(clock)
        Host(network, "10.0.0.1").socket(4200)
        network.close()
        network.close()
        clock.loop.close()
