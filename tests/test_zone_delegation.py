"""Tests for delegation checking and lame-delegation repair."""

import pytest

from repro.dnslib import A, Name, NS, RRSet, RRType, SOA
from repro.zone import (
    DelegationStatus,
    Zone,
    check_delegations,
    delegation_cuts,
    repair_parent,
)


def make_parent():
    soa = SOA("ns.com.", "admin.com.", 1, 2, 3, 4, 5)
    parent = Zone("com", soa)
    parent.put_rrset(RRSet("example.com", RRType.NS, 172800,
                           [NS("ns1.example.com"), NS("ns2.example.com")]))
    parent.put_rrset(RRSet("other.com", RRType.NS, 172800,
                           [NS("ns1.other.com")]))
    return parent


def make_child(origin="example.com", ns_names=("ns1.example.com",
                                                "ns2.example.com")):
    soa = SOA(ns_names[0], f"admin.{origin}.", 1, 2, 3, 4, 5)
    child = Zone(origin, soa)
    child.put_rrset(RRSet(origin, RRType.NS, 86400,
                          [NS(name) for name in ns_names]))
    return child


class TestDelegationCuts:
    def test_finds_cuts_below_apex(self):
        parent = make_parent()
        cuts = delegation_cuts(parent)
        assert Name.from_text("example.com") in cuts
        assert Name.from_text("other.com") in cuts

    def test_apex_ns_excluded(self):
        parent = make_parent()
        parent.put_rrset(RRSet("com", RRType.NS, 86400, [NS("a.gtld.net.")]))
        assert Name.from_text("com") not in delegation_cuts(parent)


class TestCheckDelegations:
    def test_consistent(self):
        parent = make_parent()
        children = {Name.from_text("example.com"): make_child(),
                    Name.from_text("other.com"):
                        make_child("other.com", ("ns1.other.com",))}
        reports = {r.child: r for r in check_delegations(parent, children)}
        assert reports[Name.from_text("example.com")].status == \
            DelegationStatus.CONSISTENT

    def test_orphan(self):
        parent = make_parent()
        reports = {r.child: r for r in check_delegations(parent, {})}
        report = reports[Name.from_text("example.com")]
        assert report.status == DelegationStatus.ORPHAN
        assert report.is_lame

    def test_parent_only_mismatch(self):
        parent = make_parent()
        child = make_child(ns_names=("ns1.example.com",))  # missing ns2
        reports = {r.child: r for r in check_delegations(
            parent, {Name.from_text("example.com"): child})}
        assert reports[Name.from_text("example.com")].status == \
            DelegationStatus.PARENT_ONLY

    def test_child_only_mismatch(self):
        parent = make_parent()
        child = make_child(ns_names=("ns1.example.com", "ns2.example.com",
                                     "ns3.example.com"))
        reports = {r.child: r for r in check_delegations(
            parent, {Name.from_text("example.com"): child})}
        assert reports[Name.from_text("example.com")].status == \
            DelegationStatus.CHILD_ONLY

    def test_lame_when_no_listed_server_serves_child(self):
        parent = make_parent()
        child = make_child()
        serving = {Name.from_text("ns1.example.com"): [],
                   Name.from_text("ns2.example.com"): []}
        reports = {r.child: r for r in check_delegations(
            parent, {Name.from_text("example.com"): child}, serving)}
        report = reports[Name.from_text("example.com")]
        assert report.status == DelegationStatus.LAME
        assert len(report.lame_servers) == 2

    def test_partial_lameness_not_fully_lame(self):
        parent = make_parent()
        child = make_child()
        serving = {
            Name.from_text("ns1.example.com"): [Name.from_text("example.com")],
            Name.from_text("ns2.example.com"): [],
        }
        reports = {r.child: r for r in check_delegations(
            parent, {Name.from_text("example.com"): child}, serving)}
        assert reports[Name.from_text("example.com")].status == \
            DelegationStatus.CONSISTENT


class TestRepair:
    def test_repair_pushes_child_ns_to_parent(self):
        parent = make_parent()
        child = make_child(ns_names=("ns1.example.com", "ns9.example.com"))
        assert repair_parent(parent, child)
        parent_ns = parent.get_rrset("example.com", RRType.NS)
        assert {r.target for r in parent_ns.rdatas} == {
            Name.from_text("ns1.example.com"), Name.from_text("ns9.example.com")}

    def test_repair_noop_when_consistent(self):
        parent = make_parent()
        child = make_child()
        assert not repair_parent(parent, child)

    def test_repair_then_check_consistent(self):
        parent = make_parent()
        child = make_child(ns_names=("nsX.example.com",))
        repair_parent(parent, child)
        reports = {r.child: r for r in check_delegations(
            parent, {Name.from_text("example.com"): child})}
        assert reports[Name.from_text("example.com")].status == \
            DelegationStatus.CONSISTENT
