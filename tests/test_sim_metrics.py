"""Tests for evaluation metrics."""

import pytest

from repro.sim import (
    ConsistencyReport,
    LeaseSimResult,
    StalenessSample,
    interpolate_at_query_rate,
    interpolate_at_storage,
)


def result(upstream, total, lease_seconds, pairs=10, duration=100.0):
    return LeaseSimResult(scheme="test", parameter=0.0, total_queries=total,
                          upstream_messages=upstream, grants=0,
                          lease_seconds=lease_seconds, pair_count=pairs,
                          duration=duration)


class TestLeaseSimResult:
    def test_query_rate_percentage(self):
        assert result(25, 100, 0.0).query_rate_percentage == 25.0

    def test_storage_percentage(self):
        # 10 pairs × 100 s = 1000 pair-seconds ceiling; 250 held → 25 %.
        assert result(0, 1, 250.0).storage_percentage == 25.0

    def test_zero_division_guards(self):
        empty = result(0, 0, 0.0, pairs=0, duration=0.0)
        assert empty.query_rate_percentage == 0.0
        assert empty.storage_percentage == 0.0

    def test_as_point(self):
        point = result(50, 100, 500.0).as_point()
        assert point == (50.0, 50.0)


class TestConsistencyReport:
    def test_staleness_aggregation(self):
        report = ConsistencyReport()
        report.add(StalenessSample("a", 10.0, {"r0": 15.0, "r1": 30.0}))
        report.add(StalenessSample("b", 100.0, {"r0": 100.0, "r1": None}))
        assert report.mean_staleness() == pytest.approx((5 + 20 + 0) / 3)
        assert report.max_staleness() == 20.0

    def test_no_samples(self):
        report = ConsistencyReport()
        assert report.mean_staleness() is None
        assert report.max_staleness() is None

    def test_stale_answer_ratio(self):
        report = ConsistencyReport()
        report.stale_answers = 5
        report.fresh_answers = 15
        assert report.stale_answer_ratio == 0.25

    def test_ratio_zero_when_empty(self):
        assert ConsistencyReport().stale_answer_ratio == 0.0


class TestInterpolation:
    POINTS = [(0.0, 100.0), (10.0, 50.0), (50.0, 10.0)]

    def test_exact_point(self):
        assert interpolate_at_storage(self.POINTS, 10.0) == 50.0

    def test_midpoint(self):
        assert interpolate_at_storage(self.POINTS, 5.0) == pytest.approx(75.0)

    def test_clamps_below(self):
        assert interpolate_at_storage(self.POINTS, -5.0) == 100.0

    def test_clamps_above(self):
        assert interpolate_at_storage(self.POINTS, 99.0) == 10.0

    def test_empty(self):
        assert interpolate_at_storage([], 5.0) is None

    def test_inverse_reading(self):
        # At query rate 50 % the storage is 10 %.
        assert interpolate_at_query_rate(self.POINTS, 50.0) == \
            pytest.approx(10.0)
