"""Clean counterpart to the DCUP007 fixture: partial dispatch with default."""

from repro.dnslib.enums import Opcode


def handle(message):
    if message.opcode == Opcode.QUERY:
        return "query"
    elif message.opcode == Opcode.UPDATE:
        return "update"
    else:
        return "refused"
