"""Clean counterpart to the DCUP011 fixture: mutations stay on-loop."""


class Plane:
    def __init__(self, bus, tap):
        self.bus = bus
        self.tap = tap

    def start(self):
        self.bus.add_tap(self.tap)

    async def stop(self):
        self.bus.remove_tap(self.tap)
