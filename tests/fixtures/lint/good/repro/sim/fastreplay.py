"""Clean counterpart to the DCUP006 fixture: exactly-rounded accumulation."""

import math


def lease_seconds(terms):
    return math.fsum(terms)


def count_points(per_point_terms):
    return sum(len(terms) for terms in per_point_terms)
