"""Clean counterpart to the shard DCUP006 fixture: partial folding."""

import math


def merge_lease_seconds(shard_partial_lists):
    folded = []
    for partials in shard_partial_lists:
        folded.extend(partials)
    return math.fsum(folded)
