"""Clean counterpart to the columnar DCUP006 fixture."""

import math


def merge_partials(chunks):
    return math.fsum(chunks)


def count_terms(term_columns):
    return sum(len(column) for column in term_columns)
