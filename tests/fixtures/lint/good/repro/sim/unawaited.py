"""Clean counterpart to the DCUP010 fixture: every coroutine runs."""


async def flush_pending(queue):
    while queue:
        queue.pop()


async def shutdown(queue):
    await flush_pending(queue)
