"""Clean counterpart to the DCUP009 fixture: loop-friendly waiting."""

import asyncio


async def poll_forever(loop, path):
    await asyncio.sleep(0.5)
    config = await loop.run_in_executor(None, _read, path)
    await noop()
    return config


async def noop():
    pass


def _read(path):
    with open(path) as stream:
        return stream.read()
