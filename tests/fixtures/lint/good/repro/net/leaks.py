"""Clean counterpart to the DCUP012 fixture: retained and protected."""

import socket


def launch(loop, coro, registry):
    task = loop.create_task(coro)
    registry.add(task)
    task.add_done_callback(registry.discard)
    return task


def open_port(interface):
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        sock.bind((interface, 0))
    except Exception:
        sock.close()
        raise
    return sock
