"""Clean counterpart to the DCUP005 fixture: every sink is None-guarded."""


class Transport:
    def __init__(self):
        self.trace = None
        self.capture = None
        self.rtt_hist = None

    def deliver(self, now, src, dst, payload, rtt):
        if self.trace is not None:
            self.trace.emit("net.deliver", t=now, src=src, dst=dst)
        if self.capture is not None:
            self.capture.record(now, "udp", src, dst, payload, "delivered")
        if self.rtt_hist is not None:
            self.rtt_hist.observe(rtt)
