"""Clean counterpart to the DCUP001 fixture: time arrives as an argument."""


def stamp_change(now):
    return now, now
