"""Clean counterpart to the DCUP002 fixture: seeded RNG threaded through."""

import random


def jitter(base, rng):
    return base + rng.uniform(0.0, 0.5)


def make_rng(seed):
    return random.Random(seed)
