"""Clean counterpart to the DCUP013 fixture: every transition runs."""


class Lifecycle:
    def __init__(self):
        self.trace = None

    def grant(self, now):
        if self.trace is not None:
            self.trace.emit("lease.grant", t=now)

    def renew(self, now):
        if self.trace is not None:
            self.trace.emit("lease.renew", t=now)

    def expire(self, now):
        if self.trace is not None:
            self.trace.emit("lease.expire", t=now)

    def supersede(self, now):
        if self.trace is not None:
            self.trace.emit("lease.revoke", t=now)

    def renegotiate(self, now):
        if self.trace is not None:
            self.trace.emit("renego.send", t=now)

    def refresh(self, now):
        if self.trace is not None:
            self.trace.emit("renego.refresh", t=now)

    def decline(self, now):
        if self.trace is not None:
            self.trace.emit("renego.lost", t=now)

    def abort(self, now):
        if self.trace is not None:
            self.trace.emit("renego.fail", t=now)
