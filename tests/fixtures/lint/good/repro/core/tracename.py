"""Clean counterpart to the DCUP003 fixture: a registered event name."""


class Module:
    def __init__(self):
        self.trace = None

    def on_change(self, now):
        if self.trace is not None:
            self.trace.emit("lease.grant", t=now)
