"""Clean counterpart to the DCUP013 fixture: the real lease machine."""

LEASE_STATES = ("absent", "granted", "renegotiating")
LEASE_INITIAL = "absent"
LEASE_TRANSITIONS = (
    ("grant", "absent", "granted", "lease.grant"),
    ("renew", "granted", "granted", "lease.renew"),
    ("expire", "granted", "absent", "lease.expire"),
    ("supersede", "granted", "absent", "lease.revoke"),
    ("renegotiate", "granted", "renegotiating", "renego.send"),
    ("refresh", "renegotiating", "granted", "renego.refresh"),
    ("decline", "renegotiating", "granted", "renego.lost"),
    ("abort", "renegotiating", "granted", "renego.fail"),
)
