"""Clean counterpart to the DCUP008 fixture: a well-formed suppression.

The wall-clock read is deliberate here and carries a reasoned
suppression, so the file lints clean.
"""

import time


def stamp():
    return time.time()  # repro-lint: disable=DCUP001 -- fixture exercises suppression syntax
