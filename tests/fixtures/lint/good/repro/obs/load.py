"""Clean counterpart: every load-ledger hook call is guarded."""


class NotificationModule:
    def __init__(self):
        self.load_ledger = None
        self.trace = None

    def notify(self, name, now):
        if self.load_ledger is not None:
            self.load_ledger.record(name, "notify", now)
        if self.trace is not None:
            self.trace.emit("load.storm.start", t=now, server=name)
