"""Clean counterpart: the streaming plane guards every instrument."""


class StreamingAuditor:
    def __init__(self):
        self.window_hist = None
        self.trace = None

    def retire(self, window):
        if self.window_hist is not None:
            self.window_hist.observe(window)
        if self.trace is not None:
            self.trace.emit("change.settled", window=window)
