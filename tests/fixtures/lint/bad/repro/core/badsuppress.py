"""Seeded DCUP008 violation: a suppression directive without a reason.

Because the directive is malformed it suppresses nothing, so the
wall-clock finding on the same line surfaces too.
"""

import time


def stamp():
    return time.time()  # repro-lint: disable=DCUP001
