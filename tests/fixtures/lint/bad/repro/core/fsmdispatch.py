"""Seeded DCUP013 violation: a dispatch the table does not admit."""


class Lifecycle:
    def __init__(self):
        self.trace = None

    def grant(self, now):
        if self.trace is not None:
            self.trace.emit("lease.grant", t=now)

    def renew(self, now):
        if self.trace is not None:
            self.trace.emit("lease.renew", t=now)

    def expire(self, now):
        if self.trace is not None:
            self.trace.emit("lease.expire", t=now)

    def supersede(self, now):
        if self.trace is not None:
            self.trace.emit("lease.revoke", t=now)
