"""Seeded DCUP001 violation: wall-clock reads in a core/ module."""

import time
from datetime import datetime


def stamp_change():
    detected_at = time.time()
    logged_at = datetime.now()
    return detected_at, logged_at
