"""Seeded DCUP002 violations: ambient randomness in a core/ module."""

import random


def jitter(base):
    return base + random.uniform(0.0, 0.5)


def make_rng():
    return random.Random()
