"""Seeded DCUP003 violation: an event name outside the registry.

The emit is guarded so only the name contract is violated here.
"""


class Module:
    def __init__(self):
        self.trace = None

    def on_change(self, now):
        if self.trace is not None:
            self.trace.emit("lease.granted", t=now)
