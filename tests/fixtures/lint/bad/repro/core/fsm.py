"""Seeded DCUP013 violations: an unreachable state and a dead row."""

LEASE_STATES = ("absent", "granted", "orphaned")
LEASE_INITIAL = "absent"
LEASE_TRANSITIONS = (
    ("grant", "absent", "granted", "lease.grant"),
    ("renew", "granted", "granted", "lease.renew"),
    ("expire", "granted", "absent", "lease.expire"),
    ("vanish", "orphaned", "absent", "lease.vanish"),
)
