"""Seeded DCUP007 violation: partial Opcode dispatch with no default."""

from repro.dnslib.enums import Opcode


def handle(message):
    if message.opcode == Opcode.QUERY:
        return "query"
    elif message.opcode == Opcode.UPDATE:
        return "update"
    elif message.opcode == Opcode.NOTIFY:
        return "notify"
