"""Seeded DCUP005: the load ledger carries the zero-cost contract."""


class NotificationModule:
    def __init__(self):
        self.load_ledger = None
        self.trace = None

    def notify(self, name, now):
        self.load_ledger.record(name, "notify", now)
        self.trace.emit("load.storm.start", t=now, server=name)
