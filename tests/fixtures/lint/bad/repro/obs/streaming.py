"""Seeded DCUP005: the streaming files carry the zero-cost contract."""


class StreamingAuditor:
    def __init__(self):
        self.window_hist = None
        self.trace = None

    def retire(self, window):
        self.window_hist.observe(window)
        self.trace.emit("change.settled", window=window)
