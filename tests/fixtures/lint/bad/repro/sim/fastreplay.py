"""Seeded DCUP006 violations: bare float accumulation in fastreplay."""


def lease_seconds(terms):
    total = 0.0
    for term in terms:
        total += term
    return total


def sweep_total(per_point_terms):
    return sum(per_point_terms)
