"""Seeded DCUP010 violation: a coroutine built and never awaited."""


async def flush_pending(queue):
    while queue:
        queue.pop()


async def shutdown(queue):
    flush_pending(queue)
