"""Seeded DCUP006 violation: bare float merge across shard rows."""


def merge_lease_seconds(shard_rows):
    return sum(row.lease_seconds for row in shard_rows)
