"""Seeded DCUP006 violations: bare float accumulation in columnar."""


def merge_partials(chunks):
    folded = 0.0
    for chunk in chunks:
        folded += chunk
    return folded


def sweep_lease_seconds(term_columns):
    return sum(term_columns)
