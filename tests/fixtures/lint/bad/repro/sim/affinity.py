"""Seeded DCUP011 violations: loop-owned registries mutated off-loop."""

import threading


class _Bus:
    def add_tap(self, fn):
        pass

    def remove_tap(self, fn):
        pass


GLOBAL_BUS = _Bus()
GLOBAL_BUS.add_tap(print)


class Plane:
    def __init__(self, bus, tap):
        self.bus = bus
        self.tap = tap
        threading.Thread(target=self._watch).start()

    def _watch(self):
        self.bus.add_tap(self.tap)

    def __del__(self):
        self.bus.remove_tap(self.tap)
