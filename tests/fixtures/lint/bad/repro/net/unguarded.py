"""Seeded DCUP005 violations: instrumentation without its None guard."""


class Transport:
    def __init__(self):
        self.trace = None
        self.capture = None
        self.rtt_hist = None

    def deliver(self, now, src, dst, payload, rtt):
        self.trace.emit("net.deliver", t=now, src=src, dst=dst)
        self.capture.record(now, "udp", src, dst, payload, "delivered")
        self.rtt_hist.observe(rtt)
