"""Seeded DCUP009 violations: blocking calls inside coroutines."""

import time


async def poll_forever(loop, path):
    time.sleep(0.5)
    config = open(path).read()
    loop.run_until_complete(noop())
    return config


async def noop():
    pass
