"""Seeded DCUP012 violations: a dropped task and a leaky socket."""

import socket


def launch(loop, coro):
    loop.create_task(coro)


def open_port(interface):
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.bind((interface, 0))
    return sock
