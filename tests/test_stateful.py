"""Hypothesis stateful (rule-based) tests for the core data structures.

These drive random operation sequences against a structure while
checking invariants after every step — the failure modes unit tests
with fixed sequences cannot reach.
"""

import hypothesis.strategies as st
import pytest
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import settings

from repro.core import LeaseTable
from repro.dnslib import A, Name, RRSet, RRType, SOA
from repro.server import ResolverCache
from repro.zone import Zone, ZoneError

NAMES = [f"r{i}.x.com" for i in range(5)]
CACHES = [(f"10.0.0.{i}", 53) for i in range(3)]
ADDRESSES = [f"10.9.0.{i}" for i in range(1, 6)]


class LeaseTableMachine(RuleBasedStateMachine):
    """LeaseTable vs a naive model dict."""

    def __init__(self):
        super().__init__()
        self.table = LeaseTable()
        self.model = {}  # (cache, name) -> expiry
        self.clock = 0.0

    @rule(advance=st.floats(0.0, 100.0))
    def tick(self, advance):
        self.clock += advance

    @rule(cache=st.sampled_from(CACHES), name=st.sampled_from(NAMES),
          length=st.floats(1.0, 500.0))
    def grant(self, cache, name, length):
        lease = self.table.grant(cache, name, RRType.A, self.clock, length)
        assert lease is not None  # unbounded table always grants
        self.model[(cache, name)] = self.clock + length

    @rule(cache=st.sampled_from(CACHES), name=st.sampled_from(NAMES))
    def revoke(self, cache, name):
        expected = (cache, name) in self.model
        # A revoke may also hit an expired-but-unswept lease the model
        # already dropped; only assert the one-way implication.
        result = self.table.revoke(cache, name, RRType.A)
        if expected and self.model[(cache, name)] > self.clock:
            assert result
        self.model.pop((cache, name), None)

    @rule()
    def sweep(self):
        self.table.sweep(self.clock)

    @invariant()
    def holders_match_model(self):
        for name in NAMES:
            expected = {cache for (cache, n), expiry in self.model.items()
                        if n == name and expiry > self.clock}
            actual = {lease.cache for lease in
                      self.table.holders(name, RRType.A, self.clock)}
            assert actual == expected

    @invariant()
    def active_count_consistent(self):
        assert len(self.table) == sum(1 for _ in self.table)


class ResolverCacheMachine(RuleBasedStateMachine):
    """ResolverCache vs a model of live entries."""

    def __init__(self):
        super().__init__()
        self.cache = ResolverCache(capacity=100)
        self.model = {}  # name -> (addresses, expiry, lease_until)
        self.clock = 0.0

    @rule(advance=st.floats(0.0, 50.0))
    def tick(self, advance):
        self.clock += advance

    @rule(name=st.sampled_from(NAMES),
          address=st.sampled_from(ADDRESSES),
          ttl=st.integers(1, 200),
          lease=st.one_of(st.none(), st.floats(1.0, 300.0)))
    def put(self, name, address, ttl, lease):
        rrset = RRSet(name, RRType.A, ttl, [A(address)])
        lease_until = None if lease is None else self.clock + lease
        self.cache.put(rrset, self.clock, lease_until=lease_until)
        self.model[name] = (address, self.clock + ttl, lease_until)

    @rule(name=st.sampled_from(NAMES), address=st.sampled_from(ADDRESSES))
    def apply_update(self, name, address):
        rrset = RRSet(name, RRType.A, 60, [A(address)])
        applied = self.cache.apply_cache_update(rrset, self.clock)
        if name in self.model:
            assert applied
            _, _, lease_until = self.model[name]
            self.model[name] = (address, self.clock + 60, lease_until)

    @rule(name=st.sampled_from(NAMES))
    def remove(self, name):
        self.cache.remove(name, RRType.A)
        self.model.pop(name, None)

    @invariant()
    def lookups_match_model(self):
        for name in NAMES:
            state = self.model.get(name)
            live = False
            if state is not None:
                address, expiry, lease_until = state
                live = (self.clock < expiry
                        or (lease_until is not None
                            and self.clock < lease_until))
            entry = self.cache.peek(name, RRType.A)
            if live:
                assert entry is not None
                assert entry.rrset.rdatas == (A(state[0]),)
            elif entry is not None:
                # Entry may linger (lazy expiry) but must never be
                # served by get().
                assert self.cache.get(name, RRType.A, self.clock) is None
                self.model.pop(name, None)


class ZoneMachine(RuleBasedStateMachine):
    """Zone store vs a model of its RRsets, checking serial monotonicity."""

    def __init__(self):
        super().__init__()
        soa = SOA("ns.x.com.", "admin.x.com.", 1, 2, 3, 4, 5)
        self.zone = Zone("x.com", soa)
        self.model = {}
        self.last_serial = self.zone.serial

    @rule(name=st.sampled_from(NAMES),
          addresses=st.lists(st.sampled_from(ADDRESSES), min_size=1,
                             max_size=3, unique=True))
    def put(self, name, addresses):
        rrset = RRSet(name, RRType.A, 60, [A(a) for a in addresses])
        self.zone.put_rrset(rrset)
        self.model[name] = frozenset(addresses)

    @rule(name=st.sampled_from(NAMES))
    def delete(self, name):
        self.zone.delete_rrset(name, RRType.A)
        self.model.pop(name, None)

    @invariant()
    def contents_match_model(self):
        for name in NAMES:
            rrset = self.zone.get_rrset(name, RRType.A)
            expected = self.model.get(name)
            if expected is None:
                assert rrset is None
            else:
                assert rrset is not None
                assert {r.address for r in rrset.rdatas} == set(expected)

    @invariant()
    def serial_never_regresses(self):
        from repro.zone import serial_gt
        serial = self.zone.serial
        assert serial == self.last_serial or serial_gt(serial,
                                                       self.last_serial)
        self.last_serial = serial


TestLeaseTableStateful = LeaseTableMachine.TestCase
TestResolverCacheStateful = ResolverCacheMachine.TestCase
TestZoneStateful = ZoneMachine.TestCase

for case in (TestLeaseTableStateful, TestResolverCacheStateful,
             TestZoneStateful):
    case.settings = settings(max_examples=40, stateful_step_count=30,
                             deadline=None)
