"""Tests for ResourceRecord and RRSet."""

import pytest

from repro.dnslib import (
    A,
    Name,
    ResourceRecord,
    RRClass,
    RRSet,
    RRType,
    WireReader,
    WireWriter,
    records_to_rrsets,
)


class TestResourceRecord:
    def test_wire_roundtrip(self):
        record = ResourceRecord("www.example.com", RRType.A, 300, A("1.2.3.4"))
        writer = WireWriter()
        record.to_wire(writer)
        decoded = ResourceRecord.from_wire(WireReader(writer.getvalue()))
        assert decoded == record

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord("a.b", RRType.A, -1, A("1.2.3.4"))

    def test_huge_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord("a.b", RRType.A, 2 ** 31, A("1.2.3.4"))

    def test_to_text_fields(self):
        record = ResourceRecord("www.example.com", RRType.A, 60, A("1.2.3.4"))
        assert record.to_text() == "www.example.com. 60 IN A 1.2.3.4"

    def test_equality_includes_ttl(self):
        a = ResourceRecord("a.b", RRType.A, 60, A("1.2.3.4"))
        b = ResourceRecord("a.b", RRType.A, 61, A("1.2.3.4"))
        assert a != b


class TestRRSet:
    def test_add_deduplicates(self, a_rrset):
        rrset = a_rrset("www.x.com", 60, "1.1.1.1")
        assert not rrset.add(A("1.1.1.1"))
        assert len(rrset) == 1

    def test_add_wrong_type_rejected(self, a_rrset):
        from repro.dnslib import NS
        rrset = a_rrset("www.x.com", 60, "1.1.1.1")
        with pytest.raises(ValueError):
            rrset.add(NS("ns.x.com"))

    def test_discard(self, a_rrset):
        rrset = a_rrset("www.x.com", 60, "1.1.1.1", "2.2.2.2")
        assert rrset.discard(A("1.1.1.1"))
        assert not rrset.discard(A("9.9.9.9"))
        assert len(rrset) == 1

    def test_replace(self, a_rrset):
        rrset = a_rrset("www.x.com", 60, "1.1.1.1")
        rrset.replace([A("3.3.3.3"), A("4.4.4.4")])
        assert {r.address for r in rrset} == {"3.3.3.3", "4.4.4.4"}

    def test_rotate(self, a_rrset):
        rrset = a_rrset("www.x.com", 60, "1.1.1.1", "2.2.2.2", "3.3.3.3")
        first_before = rrset.rdatas[0]
        rrset.rotate()
        assert rrset.rdatas[0] != first_before
        assert len(rrset) == 3

    def test_rotation_preserves_equality(self, a_rrset):
        rrset = a_rrset("www.x.com", 60, "1.1.1.1", "2.2.2.2")
        other = rrset.copy()
        other.rotate()
        assert rrset == other  # order-insensitive equality

    def test_same_rdatas_order_insensitive(self, a_rrset):
        one = a_rrset("www.x.com", 60, "1.1.1.1", "2.2.2.2")
        two = a_rrset("www.x.com", 60, "2.2.2.2", "1.1.1.1")
        assert one.same_rdatas(two)

    def test_ttl_differs_means_unequal(self, a_rrset):
        one = a_rrset("www.x.com", 60, "1.1.1.1")
        two = a_rrset("www.x.com", 61, "1.1.1.1")
        assert one != two

    def test_to_records_shares_ttl(self, a_rrset):
        rrset = a_rrset("www.x.com", 60, "1.1.1.1", "2.2.2.2")
        records = rrset.to_records()
        assert all(r.ttl == 60 for r in records)
        assert len(records) == 2

    def test_copy_is_independent(self, a_rrset):
        rrset = a_rrset("www.x.com", 60, "1.1.1.1")
        clone = rrset.copy()
        clone.add(A("2.2.2.2"))
        assert len(rrset) == 1

    def test_contains(self, a_rrset):
        rrset = a_rrset("www.x.com", 60, "1.1.1.1")
        assert A("1.1.1.1") in rrset
        assert A("2.2.2.2") not in rrset


class TestGrouping:
    def test_records_to_rrsets_groups_by_key(self):
        records = [
            ResourceRecord("www.x.com", RRType.A, 60, A("1.1.1.1")),
            ResourceRecord("www.x.com", RRType.A, 60, A("2.2.2.2")),
            ResourceRecord("mail.x.com", RRType.A, 60, A("3.3.3.3")),
        ]
        sets = records_to_rrsets(records)
        assert len(sets) == 2
        assert len(sets[0]) == 2
        assert sets[1].name == Name.from_text("mail.x.com")

    def test_records_to_rrsets_preserves_order(self):
        records = [
            ResourceRecord("b.x.com", RRType.A, 60, A("1.1.1.1")),
            ResourceRecord("a.x.com", RRType.A, 60, A("2.2.2.2")),
        ]
        sets = records_to_rrsets(records)
        assert sets[0].name == Name.from_text("b.x.com")
