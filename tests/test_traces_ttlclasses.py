"""Tests for Table 1's TTL classes."""

import math

import pytest

from repro.traces import (
    TTL_CLASSES,
    class_by_index,
    classify_ttl,
    expected_lifetime,
)


class TestTable1Parameters:
    """The exact numbers of Table 1."""

    def test_five_classes(self):
        assert len(TTL_CLASSES) == 5

    @pytest.mark.parametrize("index,low,high,resolution,duration_days", [
        (1, 0, 60, 20, 1),
        (2, 60, 300, 60, 3),
        (3, 300, 3600, 300, 7),
        (4, 3600, 86400, 3600, 7),
        (5, 86400, None, 86400, 30),
    ])
    def test_row(self, index, low, high, resolution, duration_days):
        ttl_class = class_by_index(index)
        assert ttl_class.ttl_low == low
        assert ttl_class.ttl_high == high
        assert ttl_class.resolution == resolution
        assert ttl_class.duration == duration_days * 86400

    def test_classes_partition_the_ttl_axis(self):
        for ttl in (0, 1, 59.9, 60, 299, 300, 3599, 3600, 86399, 86400, 1e9):
            matches = [c for c in TTL_CLASSES if c.contains(ttl)]
            assert len(matches) == 1

    def test_boundaries_left_closed(self):
        assert classify_ttl(60).index == 2
        assert classify_ttl(59.999).index == 1
        assert classify_ttl(86400).index == 5

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            classify_ttl(-1)

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError):
            class_by_index(0)
        with pytest.raises(ValueError):
            class_by_index(6)

    def test_probe_counts(self):
        # Class 1: one day at 20 s → 4320 probes.
        assert class_by_index(1).probe_count == 4320
        # Class 5: a month at one day → 30 probes.
        assert class_by_index(5).probe_count == 30

    def test_describe_mentions_class(self):
        assert "class 3" in class_by_index(3).describe()


class TestLifetimes:
    def test_paper_lifetime_arithmetic(self):
        """§3.2: class 3 at 3 % change frequency → ~2.8 h lifetimes."""
        lifetime = expected_lifetime(0.03, 300)
        assert lifetime == pytest.approx(10_000)

    def test_class5_example(self):
        """§3.2: 'a change happens every 10 days' at 10 % in class 5."""
        assert expected_lifetime(0.10, 86400) == pytest.approx(10 * 86400)

    def test_zero_frequency_infinite(self):
        assert math.isinf(expected_lifetime(0.0, 300))
