"""Tests for leases and the track file."""

import io

import pytest

from repro.core import Lease, LeaseTable, load_track_file, save_track_file
from repro.dnslib import Name, RRType

CACHE_A = ("10.2.0.1", 53)
CACHE_B = ("10.2.0.2", 53)


@pytest.fixture
def table():
    return LeaseTable()


class TestLease:
    def test_expiry(self):
        lease = Lease(CACHE_A, Name.from_text("w.x.com"), RRType.A, 100.0, 50.0)
        assert lease.expires_at == 150.0
        assert lease.is_valid(149.0)
        assert not lease.is_valid(150.0)
        assert lease.remaining(120.0) == 30.0
        assert lease.remaining(200.0) == 0.0


class TestGrantRenewRevoke:
    def test_grant_and_holders(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=100.0)
        holders = table.holders("w.x.com", RRType.A, now=50.0)
        assert [h.cache for h in holders] == [CACHE_A]

    def test_expired_not_in_holders(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=100.0)
        assert table.holders("w.x.com", RRType.A, now=100.0) == []

    def test_renewal_updates_existing(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=100.0)
        table.grant(CACHE_A, "w.x.com", RRType.A, now=50.0, length=100.0)
        assert len(table) == 1
        assert table.stats.renewals == 1
        lease = table.get(CACHE_A, "w.x.com", RRType.A)
        assert lease.expires_at == 150.0

    def test_regrant_after_expiry_counts_as_grant(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=10.0)
        table.grant(CACHE_A, "w.x.com", RRType.A, now=20.0, length=10.0)
        assert table.stats.grants == 2
        assert table.stats.renewals == 0
        assert len(table) == 1

    def test_multiple_caches_per_record(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=100.0)
        table.grant(CACHE_B, "w.x.com", RRType.A, now=0.0, length=100.0)
        assert len(table.holders("w.x.com", RRType.A, now=1.0)) == 2

    def test_revoke(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=100.0)
        assert table.revoke(CACHE_A, "w.x.com", RRType.A)
        assert not table.revoke(CACHE_A, "w.x.com", RRType.A)
        assert len(table) == 0
        assert table.stats.revocations == 1

    def test_nonpositive_length_rejected(self, table):
        with pytest.raises(ValueError):
            table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=0.0)

    def test_leases_of_cache(self, table):
        table.grant(CACHE_A, "a.x.com", RRType.A, now=0.0, length=100.0)
        table.grant(CACHE_A, "b.x.com", RRType.A, now=0.0, length=100.0)
        table.grant(CACHE_B, "a.x.com", RRType.A, now=0.0, length=100.0)
        names = {lease.name.to_text() for lease in table.leases_of(CACHE_A, 1.0)}
        assert names == {"a.x.com.", "b.x.com."}


class TestCapacity:
    def test_capacity_enforced(self):
        table = LeaseTable(capacity=2)
        assert table.grant(CACHE_A, "a.x.com", RRType.A, 0.0, 100.0)
        assert table.grant(CACHE_A, "b.x.com", RRType.A, 0.0, 100.0)
        assert table.grant(CACHE_A, "c.x.com", RRType.A, 0.0, 100.0) is None

    def test_capacity_reclaims_expired(self):
        table = LeaseTable(capacity=1)
        table.grant(CACHE_A, "a.x.com", RRType.A, 0.0, 10.0)
        # a's lease is dead by now=20; grant should sweep and succeed.
        assert table.grant(CACHE_A, "b.x.com", RRType.A, 20.0, 10.0)

    def test_renewal_exempt_from_capacity(self):
        table = LeaseTable(capacity=1)
        table.grant(CACHE_A, "a.x.com", RRType.A, 0.0, 100.0)
        assert table.grant(CACHE_A, "a.x.com", RRType.A, 1.0, 100.0)

    def test_emergency_sweep_does_not_orphan_new_record(self):
        # Regression: granting a *new* record at capacity triggers an
        # emergency sweep, which used to delete the freshly created
        # (empty) holders dict out from under the grant — the lease then
        # counted against capacity but was invisible to holders().
        table = LeaseTable(capacity=1)
        table.grant(CACHE_A, "a.x.com", RRType.A, 0.0, 10.0)
        lease = table.grant(CACHE_A, "b.x.com", RRType.A, 20.0, 10.0)
        assert lease is not None
        holders = table.holders("b.x.com", RRType.A, now=21.0)
        assert [h.cache for h in holders] == [CACHE_A]
        assert table.active_count(21.0) == 1 == len(table)


class TestSweepAndCounts:
    def test_sweep_removes_expired(self, table):
        table.grant(CACHE_A, "a.x.com", RRType.A, 0.0, 10.0)
        table.grant(CACHE_A, "b.x.com", RRType.A, 0.0, 1000.0)
        assert table.sweep(now=50.0) == 1
        assert len(table) == 1

    def test_active_count_with_now(self, table):
        table.grant(CACHE_A, "a.x.com", RRType.A, 0.0, 10.0)
        table.grant(CACHE_A, "b.x.com", RRType.A, 0.0, 1000.0)
        assert table.active_count() == 2          # unswept
        assert table.active_count(now=50.0) == 1  # time-aware

    def test_peak_active(self, table):
        for index in range(5):
            table.grant(CACHE_A, f"d{index}.x.com", RRType.A, 0.0, 100.0)
        assert table.stats.peak_active == 5

    def test_tracked_records(self, table):
        table.grant(CACHE_A, "a.x.com", RRType.A, 0.0, 100.0)
        table.grant(CACHE_B, "a.x.com", RRType.A, 0.0, 100.0)
        assert len(table.tracked_records()) == 1


class TestTrackFilePersistence:
    def test_roundtrip(self, table):
        table.grant(CACHE_A, "a.x.com", RRType.A, 5.0, 100.0)
        table.grant(CACHE_B, "b.x.com", RRType.NS, 6.0, 200.0)
        buffer = io.StringIO()
        assert save_track_file(table, buffer) == 2
        buffer.seek(0)
        loaded = load_track_file(buffer)
        assert len(loaded) == 2
        lease = loaded.get(CACHE_B, "b.x.com", RRType.NS)
        assert lease is not None
        assert lease.granted_at == 6.0 and lease.length == 200.0

    def test_file_roundtrip(self, table, tmp_path):
        table.grant(CACHE_A, "a.x.com", RRType.A, 5.0, 100.0)
        path = str(tmp_path / "track.db")
        save_track_file(table, path)
        loaded = load_track_file(path)
        assert loaded.get(CACHE_A, "a.x.com", RRType.A) is not None

    def test_header_and_comments_skipped(self):
        text = ("# comment\n\n"
                "10.2.0.1 53 a.x.com. A 5.0 100.0\n")
        loaded = load_track_file(io.StringIO(text))
        assert len(loaded) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError):
            load_track_file(io.StringIO("only three fields here\n"))
