"""Regression tests: lax-mode unknown-event warnings are deduplicated.

``repro-obs`` warns about event names outside the PROTOCOL.md §9
contract, but each *name* must be reported exactly once per invocation
— not once per record, and not once per trace for subcommands that load
several (``diff``).
"""

import json

import pytest

from repro.tools import obs_tool


def _write_trace(path, names):
    with open(path, "w") as stream:
        for index, name in enumerate(names):
            stream.write(json.dumps({"t": float(index), "event": name})
                         + "\n")


def test_unknown_name_warned_once_despite_many_records(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    _write_trace(trace, ["bogus.event"] * 50 + ["lease.grant"])
    assert obs_tool.main(["summarize", str(trace), "--json"]) == 0
    err = capsys.readouterr().err
    assert err.count("bogus.event") == 1


def test_distinct_unknown_names_each_warned_once(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    _write_trace(trace, ["bogus.event", "other.event", "bogus.event",
                         "other.event", "lease.grant"])
    assert obs_tool.main(["summarize", str(trace), "--json"]) == 0
    err = capsys.readouterr().err
    assert err.count("bogus.event") == 1
    assert err.count("other.event") == 1


def test_diff_warns_once_across_both_traces(tmp_path, capsys):
    trace_a = tmp_path / "a.jsonl"
    trace_b = tmp_path / "b.jsonl"
    _write_trace(trace_a, ["bogus.event", "lease.grant"])
    _write_trace(trace_b, ["bogus.event", "bogus.event", "lease.grant"])
    obs_tool.main(["diff", str(trace_a), str(trace_b)])
    err = capsys.readouterr().err
    assert err.count("bogus.event") == 1


def test_strict_mode_still_rejects_unknown_names(tmp_path):
    trace = tmp_path / "run.jsonl"
    _write_trace(trace, ["bogus.event"])
    with pytest.raises(ValueError):
        obs_tool.main(["--strict", "summarize", str(trace), "--json"])
