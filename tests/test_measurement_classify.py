"""Tests for change-cause classification (Figure 2f's logic)."""

import pytest

from repro.measurement import (
    ChangeTally,
    LOGICAL,
    PHYSICAL,
    aggregate,
    classify_change,
    kind_of,
)
from repro.traces import CAUSE_GROWTH, CAUSE_RELOCATION, CAUSE_ROTATION


class TestClassifyChange:
    def test_disjoint_sets_are_relocation(self):
        assert classify_change(["1.1.1.1"], ["2.2.2.2"], set()) == \
            CAUSE_RELOCATION

    def test_superset_is_growth(self):
        assert classify_change(["1.1.1.1"], ["1.1.1.1", "2.2.2.2"], set()) == \
            CAUSE_GROWTH

    def test_overlap_is_rotation(self):
        assert classify_change(["1.1.1.1", "2.2.2.2"],
                               ["2.2.2.2", "3.3.3.3"], set()) == CAUSE_ROTATION

    def test_revisit_of_seen_address_is_rotation(self):
        """Single-address CDN rotation: disjoint consecutive answers but
        the new address was seen before → round-robin, not a move."""
        assert classify_change(["2.2.2.2"], ["1.1.1.1"],
                               seen_before={"1.1.1.1", "3.3.3.3"}) == \
            CAUSE_ROTATION

    def test_fresh_disjoint_with_history_is_relocation(self):
        assert classify_change(["2.2.2.2"], ["9.9.9.9"],
                               seen_before={"1.1.1.1", "2.2.2.2"}) == \
            CAUSE_RELOCATION

    def test_empty_new_set_is_relocation(self):
        assert classify_change(["1.1.1.1"], [], set()) == CAUSE_RELOCATION

    def test_equal_sets_rejected(self):
        with pytest.raises(ValueError):
            classify_change(["1.1.1.1"], ["1.1.1.1"], set())


class TestKinds:
    def test_kind_mapping(self):
        assert kind_of(CAUSE_RELOCATION) == PHYSICAL
        assert kind_of(CAUSE_GROWTH) == LOGICAL
        assert kind_of(CAUSE_ROTATION) == LOGICAL

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            kind_of("teleportation")


class TestTally:
    def test_add_and_totals(self):
        tally = ChangeTally()
        tally.add(CAUSE_RELOCATION)
        tally.add(CAUSE_ROTATION, count=3)
        tally.add(CAUSE_GROWTH)
        assert tally.total == 5
        assert tally.physical == 1
        assert tally.logical == 4
        assert tally.physical_share() == pytest.approx(0.2)

    def test_shares_sum_to_one(self):
        tally = ChangeTally(relocation=2, growth=3, rotation=5)
        shares = tally.shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares[CAUSE_ROTATION] == pytest.approx(0.5)

    def test_empty_tally_shares_zero(self):
        shares = ChangeTally().shares()
        assert all(v == 0.0 for v in shares.values())
        assert ChangeTally().physical_share() == 0.0

    def test_unknown_cause_rejected(self):
        with pytest.raises(ValueError):
            ChangeTally().add("warp")

    def test_aggregate(self):
        total = aggregate([ChangeTally(relocation=1),
                           ChangeTally(rotation=2),
                           ChangeTally(growth=3)])
        assert total.total == 6
        assert total.relocation == 1
