"""Tests for the discrete-event simulator."""

import pytest

from repro.net import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, simulator):
        fired = []
        simulator.schedule(2.0, lambda: fired.append("b"))
        simulator.schedule(1.0, lambda: fired.append("a"))
        simulator.schedule(3.0, lambda: fired.append("c"))
        simulator.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self, simulator):
        fired = []
        for tag in range(5):
            simulator.schedule(1.0, lambda t=tag: fired.append(t))
        simulator.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self, simulator):
        times = []
        simulator.schedule(1.5, lambda: times.append(simulator.now))
        simulator.run()
        assert times == [1.5]

    def test_negative_delay_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.schedule(-1.0, lambda: None)

    def test_schedule_into_past_rejected(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        with pytest.raises(SimulationError):
            simulator.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self, simulator):
        fired = []

        def outer():
            fired.append(("outer", simulator.now))
            simulator.schedule(1.0, inner)

        def inner():
            fired.append(("inner", simulator.now))

        simulator.schedule(1.0, outer)
        simulator.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]

    def test_call_soon_runs_after_pending_same_time(self, simulator):
        fired = []
        simulator.schedule(0.0, lambda: fired.append("first"))
        simulator.call_soon(lambda: fired.append("second"))
        simulator.run()
        assert fired == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, simulator):
        fired = []
        handle = simulator.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        simulator.run()
        assert not fired

    def test_double_cancel_harmless(self, simulator):
        handle = simulator.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_excludes_cancelled(self, simulator):
        handle = simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        assert simulator.pending == 2
        handle.cancel()
        assert simulator.pending == 1


class TestRunVariants:
    def test_run_until_fires_only_due_events(self, simulator):
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(5.0, lambda: fired.append(5))
        count = simulator.run_until(2.0)
        assert count == 1 and fired == [1]
        assert simulator.now == 2.0
        assert simulator.pending == 1

    def test_run_until_inclusive_boundary(self, simulator):
        fired = []
        simulator.schedule(2.0, lambda: fired.append(2))
        simulator.run_until(2.0)
        assert fired == [2]

    def test_run_for_relative(self, simulator):
        simulator.run_until(10.0)
        fired = []
        simulator.schedule(1.0, lambda: fired.append(simulator.now))
        simulator.run_for(2.0)
        assert fired == [11.0]
        assert simulator.now == 12.0

    def test_run_backwards_rejected(self, simulator):
        simulator.run_until(5.0)
        with pytest.raises(SimulationError):
            simulator.run_until(1.0)

    def test_run_max_events(self, simulator):
        for _ in range(10):
            simulator.schedule(1.0, lambda: None)
        assert simulator.run(max_events=3) == 3
        assert simulator.pending == 7

    def test_step_returns_false_when_empty(self, simulator):
        assert simulator.step() is False

    def test_events_processed_counter(self, simulator):
        for _ in range(4):
            simulator.schedule(1.0, lambda: None)
        simulator.run()
        assert simulator.events_processed == 4

    def test_determinism_across_instances(self):
        def run_once():
            simulator = Simulator()
            log = []
            simulator.schedule(0.5, lambda: log.append(("a", simulator.now)))
            simulator.schedule(0.5, lambda: simulator.schedule(
                0.25, lambda: log.append(("b", simulator.now))))
            simulator.run()
            return log
        assert run_once() == run_once()
