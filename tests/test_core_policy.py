"""Tests for lease-grant policies."""

import pytest

from repro.core import (
    AdaptiveBudgetPolicy,
    DynamicLeasePolicy,
    FixedLeasePolicy,
    MAX_LEASE_CDN,
    MAX_LEASE_DYN,
    MAX_LEASE_REGULAR,
    NoLeasePolicy,
    category_max_lease,
    constant_max_lease,
)
from repro.dnslib import MAX_U16, Name, RRType

NAME = Name.from_text("www.example.com")


class TestNoLease:
    def test_always_denies(self):
        policy = NoLeasePolicy()
        decision = policy.decide(NAME, RRType.A, rate=100.0,
                                 max_lease=1000.0, now=0.0)
        assert not decision.granted


class TestFixedLease:
    def test_grants_fixed_length(self):
        policy = FixedLeasePolicy(300.0)
        decision = policy.decide(NAME, RRType.A, 0.0, 10_000.0, 0.0)
        assert decision.granted and decision.lease_length == 300.0

    def test_capped_by_record_max(self):
        policy = FixedLeasePolicy(10_000.0)
        decision = policy.decide(NAME, RRType.A, 0.0, MAX_LEASE_CDN, 0.0)
        assert decision.lease_length == MAX_LEASE_CDN

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            FixedLeasePolicy(0.0)


class TestDynamicLease:
    def test_grants_max_above_threshold(self):
        policy = DynamicLeasePolicy(rate_threshold=0.01)
        decision = policy.decide(NAME, RRType.A, 0.02, 6000.0, 0.0)
        assert decision.lease_length == 6000.0

    def test_denies_below_threshold(self):
        policy = DynamicLeasePolicy(rate_threshold=0.01)
        assert not policy.decide(NAME, RRType.A, 0.005, 6000.0, 0.0).granted

    def test_zero_threshold_grants_everyone(self):
        policy = DynamicLeasePolicy(rate_threshold=0.0)
        assert policy.decide(NAME, RRType.A, 0.0, 6000.0, 0.0).granted

    def test_zero_max_lease_denies(self):
        policy = DynamicLeasePolicy(rate_threshold=0.0)
        assert not policy.decide(NAME, RRType.A, 1.0, 0.0, 0.0).granted

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            DynamicLeasePolicy(rate_threshold=-1.0)


class TestLltClamping:
    def test_small_lease_fits(self):
        policy = DynamicLeasePolicy(0.0)
        decision = policy.decide(NAME, RRType.A, 1.0, MAX_LEASE_DYN, 0.0)
        assert decision.clamped_llt() == MAX_LEASE_DYN

    def test_six_day_lease_saturates_16_bits(self):
        policy = DynamicLeasePolicy(0.0)
        decision = policy.decide(NAME, RRType.A, 1.0, MAX_LEASE_REGULAR, 0.0)
        assert decision.clamped_llt() == MAX_U16


class TestAdaptivePolicy:
    def test_threshold_rises_under_pressure(self):
        load = {"value": 1.0}
        policy = AdaptiveBudgetPolicy(base_threshold=0.001,
                                      occupancy=lambda: load["value"])
        before = policy.threshold
        policy.decide(NAME, RRType.A, 1.0, 100.0, 0.0)
        assert policy.threshold > before

    def test_threshold_decays_when_idle(self):
        load = {"value": 1.0}
        policy = AdaptiveBudgetPolicy(base_threshold=0.001,
                                      occupancy=lambda: load["value"])
        for _ in range(5):
            policy.decide(NAME, RRType.A, 1.0, 100.0, 0.0)
        peak = policy.threshold
        load["value"] = 0.0
        for _ in range(20):
            policy.decide(NAME, RRType.A, 1.0, 100.0, 0.0)
        assert policy.threshold < peak
        assert policy.threshold >= policy.base_threshold

    def test_denies_cold_records_under_pressure(self):
        policy = AdaptiveBudgetPolicy(base_threshold=0.01,
                                      occupancy=lambda: 1.0)
        for _ in range(10):
            decision = policy.decide(NAME, RRType.A, 0.001, 100.0, 0.0)
        assert not decision.granted

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBudgetPolicy(0.1, lambda: 0.0, high_water=0.5,
                                 low_water=0.6)
        with pytest.raises(ValueError):
            AdaptiveBudgetPolicy(0.1, lambda: 0.0, adjust_factor=1.0)


class TestMaxLeaseFns:
    def test_constant(self):
        fn = constant_max_lease(42.0)
        assert fn(NAME, RRType.A) == 42.0

    def test_category_map_paper_defaults(self):
        categories = {
            Name.from_text("cdn.example.net"): "cdn",
            Name.from_text("dyn.example.org"): "dyn",
            Name.from_text("plain.example.com"): "regular",
        }
        fn = category_max_lease(categories)
        assert fn(Name.from_text("cdn.example.net"), RRType.A) == MAX_LEASE_CDN
        assert fn(Name.from_text("dyn.example.org"), RRType.A) == MAX_LEASE_DYN
        assert fn(Name.from_text("plain.example.com"), RRType.A) == \
            MAX_LEASE_REGULAR

    def test_subdomain_inherits_category(self):
        categories = {Name.from_text("cdn.example.net"): "cdn"}
        fn = category_max_lease(categories)
        assert fn(Name.from_text("img7.cdn.example.net"), RRType.A) == \
            MAX_LEASE_CDN

    def test_unknown_name_gets_regular(self):
        fn = category_max_lease({})
        assert fn(Name.from_text("whatever.test"), RRType.A) == \
            MAX_LEASE_REGULAR
