"""Tests for the client stub resolver and its browser-style cache."""

import pytest

from repro.dnslib import Message, Rcode, RRType, make_response
from repro.net import RetryPolicy
from repro.server import StubResolver, DEFAULT_CLIENT_CACHE_SECONDS


@pytest.fixture
def fake_nameserver(make_host, simulator):
    """A canned local nameserver answering every A query with 1.2.3.4."""
    host = make_host("10.2.0.1")
    sock = host.dns_socket()
    count = {"queries": 0}

    def handle(payload, src, dst):
        count["queries"] += 1
        query = Message.from_wire(payload)
        response = make_response(query)
        from repro.dnslib import A, ResourceRecord
        response.answer.append(ResourceRecord(
            query.question[0].name, RRType.A, 60, A("1.2.3.4")))
        sock.send(response.to_wire(), src)

    sock.on_receive(handle)
    return count


def lookup(stub, simulator, name):
    results = []
    stub.lookup(name, lambda addrs, rc: results.append((addrs, rc)))
    simulator.run()
    return results[0]


class TestLookup:
    def test_basic_lookup(self, fake_nameserver, make_host, simulator):
        stub = StubResolver(make_host("10.3.0.1"), ("10.2.0.1", 53))
        addrs, rcode = lookup(stub, simulator, "www.example.com")
        assert addrs == ["1.2.3.4"] and rcode == Rcode.NOERROR

    def test_default_cache_is_mozilla_15_minutes(self, make_host):
        stub = StubResolver(make_host("10.3.0.2"), ("10.2.0.1", 53))
        assert stub.cache_seconds == DEFAULT_CLIENT_CACHE_SECONDS == 900

    def test_cache_absorbs_repeat_lookups(self, fake_nameserver, make_host,
                                          simulator):
        stub = StubResolver(make_host("10.3.0.3"), ("10.2.0.1", 53))
        lookup(stub, simulator, "www.example.com")
        lookup(stub, simulator, "www.example.com")
        assert fake_nameserver["queries"] == 1
        assert stub.stats.cache_hits == 1

    def test_cache_expires_after_period(self, fake_nameserver, make_host,
                                        simulator):
        stub = StubResolver(make_host("10.3.0.4"), ("10.2.0.1", 53),
                            cache_seconds=100.0)
        lookup(stub, simulator, "www.example.com")
        simulator.run_until(simulator.now + 101.0)
        lookup(stub, simulator, "www.example.com")
        assert fake_nameserver["queries"] == 2

    def test_zero_cache_always_queries(self, fake_nameserver, make_host,
                                       simulator):
        stub = StubResolver(make_host("10.3.0.5"), ("10.2.0.1", 53),
                            cache_seconds=0.0)
        lookup(stub, simulator, "www.example.com")
        lookup(stub, simulator, "www.example.com")
        assert fake_nameserver["queries"] == 2

    def test_flush_cache(self, fake_nameserver, make_host, simulator):
        stub = StubResolver(make_host("10.3.0.6"), ("10.2.0.1", 53))
        lookup(stub, simulator, "www.example.com")
        stub.flush_cache()
        lookup(stub, simulator, "www.example.com")
        assert fake_nameserver["queries"] == 2

    def test_cached_addresses_inspection(self, fake_nameserver, make_host,
                                         simulator):
        stub = StubResolver(make_host("10.3.0.7"), ("10.2.0.1", 53))
        assert stub.cached_addresses("www.example.com") is None
        lookup(stub, simulator, "www.example.com")
        assert stub.cached_addresses("www.example.com") == ["1.2.3.4"]

    def test_timeout_reports_servfail(self, make_host, simulator):
        stub = StubResolver(make_host("10.3.0.8"), ("203.0.113.9", 53),
                            retry=RetryPolicy(initial_timeout=0.1,
                                              max_attempts=1))
        addrs, rcode = lookup(stub, simulator, "www.example.com")
        assert addrs == [] and rcode == Rcode.SERVFAIL
        assert stub.stats.failures == 1
