"""Tests for the §4.2 offline lease optimizers."""

import pytest

from repro.core import (
    LeaseInstance,
    communication_constrained,
    communication_constrained_floor,
    storage_constrained,
    storage_constrained_exact,
    sweep_storage_budgets,
)


def make_instances():
    """Four pairs with well-separated rates, uniform max lease 100 s."""
    rates = [1.0, 0.1, 0.01, 0.001]
    return [LeaseInstance(record=f"r{i}", cache="c", query_rate=rate,
                          max_lease=100.0)
            for i, rate in enumerate(rates)]


class TestStorageConstrained:
    def test_grants_by_descending_rate(self):
        instances = make_instances()
        # Budget for roughly two leases: hottest two cost ~0.990 + 0.909.
        assignment = storage_constrained(instances, storage_budget=1.95)
        granted = {key[0] for key in assignment.granted}
        assert granted == {"r0", "r1"}

    def test_zero_budget_grants_nothing(self):
        assignment = storage_constrained(make_instances(), 0.0)
        assert assignment.granted_count == 0
        point = assignment.operating_point()
        assert point.query_rate_percentage == 100.0

    def test_huge_budget_grants_everything(self):
        assignment = storage_constrained(make_instances(), 1e9)
        assert assignment.granted_count == 4

    def test_budget_respected(self):
        instances = make_instances()
        for budget in (0.5, 1.0, 2.0, 3.0):
            assignment = storage_constrained(instances, budget)
            used = sum(inst.storage_cost for inst in instances
                       if (inst.record, inst.cache) in assignment.granted)
            assert used <= budget + 1e-9

    def test_covered_query_rate_is_maximal(self):
        """§4.2.1's guarantee: the greedy covers the highest total rate
        among equal-count selections."""
        instances = make_instances()
        assignment = storage_constrained(instances, storage_budget=1.95)
        covered = sum(inst.query_rate for inst in instances
                      if (inst.record, inst.cache) in assignment.granted)
        # Any other 2-subset covers strictly less.
        from itertools import combinations
        for pair in combinations(instances, assignment.granted_count):
            if sum(i.storage_cost for i in pair) <= 1.95:
                assert covered >= sum(i.query_rate for i in pair) - 1e-12

    def test_zero_rate_pairs_skipped(self):
        instances = [LeaseInstance("r", "c", 0.0, 100.0)]
        assignment = storage_constrained(instances, 10.0)
        assert assignment.granted_count == 0

    def test_rate_threshold_is_min_granted_rate(self):
        instances = make_instances()
        assignment = storage_constrained(instances, 1.95)
        assert assignment.rate_threshold() == 0.1

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            storage_constrained([], -1.0)

    def test_greedy_matches_exact_on_separated_instance(self):
        instances = make_instances()
        budget = 1.95
        greedy = storage_constrained(instances, budget)
        exact = storage_constrained_exact(instances, budget)
        greedy_saving = (greedy.operating_point().max_message_rate
                         - greedy.operating_point().message_rate)
        exact_saving = (exact.operating_point().max_message_rate
                        - exact.operating_point().message_rate)
        assert greedy_saving == pytest.approx(exact_saving, rel=1e-6)

    def test_greedy_near_exact_on_adversarial_instance(self):
        # Rates crafted so one big item competes with two small ones.
        instances = [
            LeaseInstance("big", "c", 1.0, 1000.0),      # cost ~0.999
            LeaseInstance("s1", "c", 0.45, 1000.0),      # cost ~0.9978
            LeaseInstance("s2", "c", 0.45, 1000.0),
        ]
        budget = 1.999
        greedy = storage_constrained(instances, budget)
        exact = storage_constrained_exact(instances, budget, resolution=4000)
        g = greedy.operating_point()
        e = exact.operating_point()
        greedy_saving = g.max_message_rate - g.message_rate
        exact_saving = e.max_message_rate - e.message_rate
        assert greedy_saving >= 0.5 * exact_saving  # greedy 2-approx bound


class TestCommunicationConstrained:
    def test_floor_is_fully_leased_rate(self):
        instances = make_instances()
        floor = communication_constrained_floor(instances)
        assert floor == pytest.approx(
            sum(inst.message_rate_granted for inst in instances))

    def test_deprives_lowest_rate_first(self):
        instances = make_instances()
        floor = communication_constrained_floor(instances)
        # Allow enough headroom to deprive exactly the two coldest pairs.
        budget = floor + instances[3].message_saving \
            + instances[2].message_saving + 1e-12
        assignment = communication_constrained(instances, budget)
        granted = {key[0] for key in assignment.granted}
        assert granted == {"r0", "r1"}

    def test_budget_respected(self):
        instances = make_instances()
        floor = communication_constrained_floor(instances)
        budget = floor * 3
        assignment = communication_constrained(instances, budget)
        point = assignment.operating_point()
        assert point.message_rate <= budget + 1e-9

    def test_lease_count_minimal_for_budget(self):
        """§4.2.2's guarantee: no assignment with fewer leases meets the
        budget (checked exhaustively on a small instance)."""
        from itertools import combinations
        instances = make_instances()
        floor = communication_constrained_floor(instances)
        budget = floor + instances[3].message_saving + \
            instances[2].message_saving / 2
        assignment = communication_constrained(instances, budget)
        count = assignment.granted_count
        for smaller in range(count):
            for subset in combinations(instances, smaller):
                rate = sum(i.message_rate_granted if i in subset
                           else i.message_rate_denied for i in instances)
                assert rate > budget

    def test_infeasible_budget_raises(self):
        instances = make_instances()
        floor = communication_constrained_floor(instances)
        with pytest.raises(ValueError):
            communication_constrained(instances, floor / 2)

    def test_generous_budget_deprives_everything(self):
        instances = make_instances()
        total_polling = sum(i.query_rate for i in instances)
        assignment = communication_constrained(instances, total_polling + 1)
        assert assignment.granted_count == 0


class TestDuality:
    def test_storage_and_communication_duals_meet(self):
        """Running SLP at budget B then CLP at the resulting message rate
        must reproduce (at least) the same lease count."""
        instances = make_instances()
        slp = storage_constrained(instances, storage_budget=1.95)
        message_rate = slp.operating_point().message_rate
        clp = communication_constrained(instances, message_rate + 1e-9)
        assert clp.granted_count == slp.granted_count
        assert set(clp.granted) == set(slp.granted)


class TestSweep:
    def test_sweep_monotone(self):
        instances = make_instances()
        budgets = [0.0, 0.5, 1.0, 2.0, 4.0]
        sweep = sweep_storage_budgets(instances, budgets)
        storages = [point.storage_percentage for _, point in sweep]
        query_rates = [point.query_rate_percentage for _, point in sweep]
        assert storages == sorted(storages)
        assert query_rates == sorted(query_rates, reverse=True)


class TestLeaseInstance:
    def test_validation(self):
        with pytest.raises(ValueError):
            LeaseInstance("r", "c", -1.0, 10.0)
        with pytest.raises(ValueError):
            LeaseInstance("r", "c", 1.0, -10.0)

    def test_message_saving_positive(self):
        inst = LeaseInstance("r", "c", 0.5, 100.0)
        assert inst.message_saving > 0
        assert inst.message_rate_granted < inst.message_rate_denied
