"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dnslib import A, Name, NS, RRSet, RRType, SOA
from repro.net import Host, Network, Simulator
from repro.zone import Zone, load_zone

EXAMPLE_ZONE_TEXT = """\
$ORIGIN example.com.
$TTL 3600
@       IN SOA ns1 admin 1 7200 900 604800 300
@       IN NS  ns1
@       IN NS  ns2
@       IN MX  10 mail
ns1     IN A   10.0.0.1
ns2     IN A   10.0.0.2
www     IN A   10.0.0.10
www     IN A   10.0.0.11
mail    IN A   10.0.0.20
ftp     IN CNAME www
text    IN TXT "hello world"
sub     IN NS  ns1.sub
ns1.sub IN A   10.0.1.1
"""


@pytest.fixture
def example_zone() -> Zone:
    return load_zone(EXAMPLE_ZONE_TEXT)


@pytest.fixture
def simulator() -> Simulator:
    return Simulator()


@pytest.fixture
def network(simulator) -> Network:
    return Network(simulator, seed=1234)


@pytest.fixture
def make_host(network):
    """Factory: make_host('10.0.0.1') -> Host bound to that address."""
    def factory(address: str) -> Host:
        return Host(network, address)
    return factory


def make_a_rrset(name: str, ttl: int, *addresses: str) -> RRSet:
    return RRSet(name, RRType.A, ttl, [A(addr) for addr in addresses])


@pytest.fixture
def a_rrset():
    return make_a_rrset
