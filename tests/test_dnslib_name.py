"""Tests for repro.dnslib.name."""

import pytest

from repro.dnslib import Name, NameError_, as_name


class TestConstruction:
    def test_from_text_basic(self):
        name = Name.from_text("www.example.com")
        assert name.labels == ("www", "example", "com")

    def test_trailing_dot_optional(self):
        assert Name.from_text("example.com.") == Name.from_text("example.com")

    def test_root_from_dot(self):
        assert Name.from_text(".").is_root()

    def test_root_from_empty(self):
        assert Name.from_text("").is_root()

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("www..com")

    def test_label_too_long_rejected(self):
        with pytest.raises(NameError_):
            Name(["x" * 64, "com"])

    def test_label_63_accepted(self):
        Name(["x" * 63, "com"])

    def test_name_too_long_rejected(self):
        labels = ["a" * 60] * 5  # 5*61 + 1 = 306 > 255
        with pytest.raises(NameError_):
            Name(labels)

    def test_as_name_passthrough(self):
        name = Name.from_text("a.b")
        assert as_name(name) is name

    def test_as_name_from_string(self):
        assert as_name("a.b") == Name.from_text("a.b")


class TestCaseInsensitivity:
    def test_equality_ignores_case(self):
        assert Name.from_text("WWW.Example.COM") == Name.from_text("www.example.com")

    def test_hash_ignores_case(self):
        assert hash(Name.from_text("A.B")) == hash(Name.from_text("a.b"))

    def test_presentation_preserves_case(self):
        assert Name.from_text("WWW.example.com").to_text() == "WWW.example.com."


class TestStructure:
    def test_parent(self):
        assert Name.from_text("www.example.com").parent() == Name.from_text("example.com")

    def test_parent_of_root_raises(self):
        with pytest.raises(NameError_):
            Name.root().parent()

    def test_child(self):
        assert Name.from_text("example.com").child("www") == Name.from_text("www.example.com")

    def test_concatenate(self):
        rel = Name.from_text("www")
        origin = Name.from_text("example.com")
        assert rel.concatenate(origin) == Name.from_text("www.example.com")

    def test_is_subdomain_of_self(self):
        name = Name.from_text("example.com")
        assert name.is_subdomain_of(name)

    def test_is_subdomain_of_parent(self):
        assert Name.from_text("www.example.com").is_subdomain_of(
            Name.from_text("example.com"))

    def test_not_subdomain_of_sibling(self):
        assert not Name.from_text("www.example.com").is_subdomain_of(
            Name.from_text("other.com"))

    def test_everything_under_root(self):
        assert Name.from_text("a.b.c").is_subdomain_of(Name.root())

    def test_partial_label_is_not_subdomain(self):
        # "ample.com" must not match "example.com" suffix-wise.
        assert not Name.from_text("ample.com").is_subdomain_of(
            Name.from_text("example.com"))

    def test_relativize(self):
        name = Name.from_text("www.sub.example.com")
        assert name.relativize(Name.from_text("example.com")) == ("www", "sub")

    def test_relativize_not_under_raises(self):
        with pytest.raises(NameError_):
            Name.from_text("a.org").relativize(Name.from_text("example.com"))

    def test_ancestors_walk_to_root(self):
        chain = list(Name.from_text("a.b.c").ancestors())
        assert [n.to_text() for n in chain] == ["a.b.c.", "b.c.", "c.", "."]

    def test_tld(self):
        assert Name.from_text("www.example.com").tld() == "com"
        assert Name.root().tld() == ""

    def test_wire_length(self):
        # www.example.com. = 1+3 + 1+7 + 1+3 + 1 = 17
        assert Name.from_text("www.example.com").wire_length() == 17
        assert Name.root().wire_length() == 1


class TestOrderingAndRepr:
    def test_canonical_ordering_by_reversed_labels(self):
        a = Name.from_text("a.example.com")
        z = Name.from_text("z.example.com")
        other = Name.from_text("a.example.net")
        assert a < z
        assert a < other  # com < net at the top level

    def test_repr_roundtrip_text(self):
        assert "www.example.com." in repr(Name.from_text("www.example.com"))

    def test_len_is_label_count(self):
        assert len(Name.from_text("a.b.c")) == 3
        assert len(Name.root()) == 0
