"""Tests for smoothed-RTT upstream server selection."""

import pytest

from repro.dnslib import Name, Rcode, RRType
from repro.net import LatencyModel, LinkProfile, RetryPolicy
from repro.server import AuthoritativeServer, RecursiveResolver
from repro.zone import load_zone

ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.                IN SOA a.root. admin. 1 7200 900 604800 300
.                IN NS a.root.
a.root.          IN A  198.41.0.4
example.com.     IN NS ns1.example.com.
example.com.     IN NS ns2.example.com.
ns1.example.com. IN A  10.1.0.1
ns2.example.com. IN A  10.1.0.2
"""

AUTH_TEXT = """\
$ORIGIN example.com.
$TTL 5
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
@    IN NS  ns2
ns1  IN A   10.1.0.1
ns2  IN A   10.1.0.2
www  IN A   10.0.0.10
"""


class TestRttBookkeeping:
    def test_first_sample_adopted(self, make_host):
        resolver = RecursiveResolver(make_host("10.2.0.1"),
                                     [("198.41.0.4", 53)])
        resolver.record_rtt(("10.1.0.1", 53), 0.05)
        assert resolver.server_rtts[("10.1.0.1", 53)] == 0.05

    def test_smoothing(self, make_host):
        resolver = RecursiveResolver(make_host("10.2.0.2"),
                                     [("198.41.0.4", 53)])
        server = ("10.1.0.1", 53)
        resolver.record_rtt(server, 0.1)
        resolver.record_rtt(server, 0.2)
        assert resolver.server_rtts[server] == pytest.approx(
            0.7 * 0.1 + 0.3 * 0.2)

    def test_timeout_penalty_doubles(self, make_host):
        resolver = RecursiveResolver(make_host("10.2.0.3"),
                                     [("198.41.0.4", 53)])
        server = ("10.1.0.1", 53)
        resolver.record_timeout(server)
        first = resolver.server_rtts[server]
        resolver.record_timeout(server)
        assert resolver.server_rtts[server] == first * 2

    def test_unknown_servers_first(self, make_host):
        resolver = RecursiveResolver(make_host("10.2.0.4"),
                                     [("198.41.0.4", 53)])
        resolver.record_rtt(("a", 53), 0.01)
        order = resolver.order_servers([("a", 53), ("b", 53)])
        assert order[0] == ("b", 53)

    def test_fastest_known_first(self, make_host):
        resolver = RecursiveResolver(make_host("10.2.0.5"),
                                     [("198.41.0.4", 53)])
        resolver.record_rtt(("slow", 53), 0.5)
        resolver.record_rtt(("fast", 53), 0.01)
        order = resolver.order_servers([("slow", 53), ("fast", 53)])
        assert order == [("fast", 53), ("slow", 53)]


class TestLearnedPreference:
    def test_resolver_converges_to_fast_replica(self, make_host, network,
                                                simulator):
        """With one fast and one slow replica, repeated resolutions end
        up overwhelmingly on the fast one."""
        AuthoritativeServer(make_host("198.41.0.4"),
                            [load_zone(ROOT_TEXT, origin=Name.root())])
        fast = AuthoritativeServer(make_host("10.1.0.1"),
                                   [load_zone(AUTH_TEXT)])
        slow = AuthoritativeServer(make_host("10.1.0.2"),
                                   [load_zone(AUTH_TEXT)])
        resolver_host = make_host("10.2.0.9")
        network.set_link_profile("10.2.0.9", "10.1.0.2",
                                 LinkProfile(latency=LatencyModel(base=0.4)))
        resolver = RecursiveResolver(resolver_host, [("198.41.0.4", 53)])
        # TTL is 5 s, so each round-trip re-queries upstream.
        for round_index in range(30):
            done = []
            resolver.resolve("www.example.com", RRType.A,
                             lambda recs, rc: done.append(rc))
            simulator.run()
            simulator.run_until(simulator.now + 10.0)
            assert done == [Rcode.NOERROR]
        # The fast replica should have absorbed the bulk of the queries.
        assert fast.stats.queries > 3 * slow.stats.queries

    def test_resolver_routes_around_dead_server(self, make_host, simulator):
        """A dead replica is tried, penalized, and then avoided."""
        AuthoritativeServer(make_host("198.41.0.4"),
                            [load_zone(ROOT_TEXT, origin=Name.root())])
        alive = AuthoritativeServer(make_host("10.1.0.1"),
                                    [load_zone(AUTH_TEXT)])
        # 10.1.0.2 is simply not bound: a dead server.
        resolver = RecursiveResolver(
            make_host("10.2.0.8"), [("198.41.0.4", 53)],
            retry=RetryPolicy(initial_timeout=0.3, max_attempts=2))
        outcomes = []
        for _ in range(10):
            resolver.resolve("www.example.com", RRType.A,
                             lambda recs, rc: outcomes.append(rc))
            simulator.run()
            simulator.run_until(simulator.now + 10.0)
        assert all(rc == Rcode.NOERROR for rc in outcomes)
        dead_rtt = resolver.server_rtts.get(("10.1.0.2", 53))
        live_rtt = resolver.server_rtts.get(("10.1.0.1", 53))
        if dead_rtt is not None and live_rtt is not None:
            assert dead_rtt > live_rtt
