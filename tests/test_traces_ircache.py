"""Tests for the synthetic IRCache proxy log (Figure 1's input)."""

import pytest

from repro.traces import (
    PopulationConfig,
    figure1_series,
    generate_population,
    powerlaw_fit,
    synthesize_proxy_log,
    top_domains,
)


@pytest.fixture(scope="module")
def population():
    return generate_population(PopulationConfig(regular_per_tld=50,
                                                cdn_count=10, dyn_count=10))


@pytest.fixture(scope="module")
def log(population):
    return synthesize_proxy_log(population, total_requests=100_000, seed=3)


class TestSynthesis:
    def test_total_requests_conserved(self, log):
        assert sum(entry.requests for entry in log) == 100_000

    def test_one_entry_per_domain(self, population, log):
        assert len(log) == len(population)

    def test_deterministic(self, population):
        a = synthesize_proxy_log(population, total_requests=10_000, seed=5)
        b = synthesize_proxy_log(population, total_requests=10_000, seed=5)
        assert [e.requests for e in a] == [e.requests for e in b]

    def test_popularity_reflected(self, population, log):
        by_name = {entry.name: entry.requests for entry in log}
        tlds = {}
        for domain in population:
            tlds.setdefault(domain.name.tld(), []).append(domain)
        # Within one TLD, the most popular domain gets more requests than
        # the least popular one (Zipf head vs tail).
        members = tlds["com"]
        hottest = max(members, key=lambda d: d.popularity)
        coldest = min(members, key=lambda d: d.popularity)
        assert by_name[hottest.name] > by_name[coldest.name]


class TestFigure1Series:
    def test_series_keyed_by_tld(self, log):
        series = figure1_series(log)
        assert "com" in series and "net" in series

    def test_counts_conserve_nonzero_domains(self, log):
        series = figure1_series(log)
        total = sum(count for points in series.values()
                    for _, count in points)
        nonzero = sum(1 for entry in log if entry.requests > 0)
        assert total == nonzero

    def test_heavy_tail_slope_negative(self, log):
        """Figure 1's qualitative claim: domain count falls off as a
        power law in request count."""
        series = figure1_series(log)
        slope, _ = powerlaw_fit(series["com"])
        assert slope < -0.3

    def test_powerlaw_fit_needs_points(self):
        with pytest.raises(ValueError):
            powerlaw_fit([(1.0, 1)])


class TestTopDomains:
    def test_top_sorted_descending(self, log):
        top = top_domains(log, 50)
        requests = [entry.requests for entry in top]
        assert requests == sorted(requests, reverse=True)
        assert len(top) == 50

    def test_top_50_feeds_testbed_zones(self, log):
        """§5.2 builds 40 zones from the 50 most popular domains."""
        top = top_domains(log, 50)
        zone_origins = {tuple(entry.name.labels[-2:]) for entry in top}
        assert len(zone_origins) >= 1
