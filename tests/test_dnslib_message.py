"""Tests for DNS messages and the DNScup wire extensions."""

import pytest

from repro.dnslib import (
    A,
    MAX_UDP_PAYLOAD,
    Message,
    Opcode,
    Question,
    Rcode,
    ResourceRecord,
    RRType,
    WireFormatError,
    make_cache_update,
    make_cache_update_ack,
    WireTemplate,
    make_notify,
    make_query,
    make_response,
    make_update,
)


class TestHeaderFlags:
    def test_opcode_roundtrips_all(self):
        for opcode in Opcode:
            message = Message()
            message.opcode = opcode
            decoded = Message.from_wire(message.to_wire())
            assert decoded.opcode == opcode

    def test_rcode_roundtrips_all(self):
        for rcode in Rcode:
            message = Message(rcode=rcode)
            assert Message.from_wire(message.to_wire()).rcode == rcode

    def test_flag_accessors(self):
        message = Message()
        for attr in ("is_response", "authoritative", "truncated",
                     "recursion_desired", "recursion_available",
                     "cache_update_aware"):
            assert getattr(message, attr) is False
            setattr(message, attr, True)
            assert getattr(message, attr) is True
            setattr(message, attr, False)
            assert getattr(message, attr) is False

    def test_ids_distinct(self):
        assert Message().id != Message().id


class TestQueryResponse:
    def test_plain_query_roundtrip(self):
        query = make_query("www.example.com", RRType.A)
        decoded = Message.from_wire(query.to_wire())
        assert decoded.question[0].name.to_text() == "www.example.com."
        assert decoded.question[0].rrc is None
        assert not decoded.cache_update_aware

    def test_plain_query_is_byte_identical_without_cu(self):
        """Backward compatibility: no RRC/LLT bytes unless CU is set."""
        query = make_query("a.b", RRType.A)
        baseline = len(query.to_wire())
        cu_query = make_query("a.b", RRType.A, rrc=0)
        assert len(cu_query.to_wire()) == baseline + 2

    def test_rrc_roundtrip(self):
        query = make_query("www.example.com", RRType.A, rrc=1234)
        decoded = Message.from_wire(query.to_wire())
        assert decoded.cache_update_aware
        assert decoded.question[0].rrc == 1234

    def test_rrc_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Question("a.b", RRType.A, rrc=70000)

    def test_response_mirrors_query(self):
        query = make_query("www.example.com", RRType.A, rrc=1)
        response = make_response(query)
        assert response.id == query.id
        assert response.is_response
        assert response.cache_update_aware
        assert response.question == query.question

    def test_llt_roundtrip(self):
        query = make_query("www.example.com", RRType.A, rrc=5)
        response = make_response(query, llt=6000)
        response.answer.append(
            ResourceRecord("www.example.com", RRType.A, 60, A("1.2.3.4")))
        decoded = Message.from_wire(response.to_wire())
        assert decoded.llt == 6000
        assert decoded.answer[0].rdata == A("1.2.3.4")

    def test_llt_requires_cu_query(self):
        query = make_query("www.example.com", RRType.A)
        with pytest.raises(ValueError):
            make_response(query, llt=100)

    def test_llt_out_of_range(self):
        query = make_query("a.b", RRType.A, rrc=0)
        with pytest.raises(ValueError):
            make_response(query, llt=1 << 16)

    def test_multisection_roundtrip(self):
        query = make_query("www.example.com", RRType.A)
        response = make_response(query)
        response.answer.append(ResourceRecord("www.example.com", RRType.A,
                                              60, A("1.1.1.1")))
        response.authority.append(ResourceRecord("example.com", RRType.A,
                                                 60, A("2.2.2.2")))
        response.additional.append(ResourceRecord("ns.example.com", RRType.A,
                                                  60, A("3.3.3.3")))
        decoded = Message.from_wire(response.to_wire())
        assert len(decoded.answer) == 1
        assert len(decoded.authority) == 1
        assert len(decoded.additional) == 1

    def test_trailing_bytes_rejected(self):
        data = make_query("a.b", RRType.A).to_wire() + b"\x00"
        with pytest.raises(WireFormatError):
            Message.from_wire(data)


class TestUpdateVocabulary:
    def test_make_update_shape(self):
        message = make_update("example.com")
        assert message.opcode == Opcode.UPDATE
        assert message.zone[0].rrtype == RRType.SOA
        assert message.zone is message.question
        assert message.prerequisite is message.answer
        assert message.update is message.authority


class TestNotify:
    def test_make_notify(self):
        message = make_notify("example.com")
        assert message.opcode == Opcode.NOTIFY
        assert message.authoritative


class TestCacheUpdate:
    def test_cache_update_shape(self):
        records = [ResourceRecord("www.example.com", RRType.A, 60, A("9.9.9.9"))]
        message = make_cache_update("www.example.com", records)
        assert message.opcode == Opcode.CACHE_UPDATE
        assert message.cache_update_aware
        assert not message.is_response
        decoded = Message.from_wire(message.to_wire())
        assert decoded.opcode == Opcode.CACHE_UPDATE
        assert decoded.answer[0].rdata == A("9.9.9.9")

    def test_cache_update_ack_matches_id(self):
        records = [ResourceRecord("www.example.com", RRType.A, 60, A("9.9.9.9"))]
        update = make_cache_update("www.example.com", records)
        ack = make_cache_update_ack(update)
        assert ack.id == update.id
        assert ack.is_response
        assert ack.opcode == Opcode.CACHE_UPDATE
        Message.from_wire(ack.to_wire())  # must encode cleanly

    def test_cache_update_fits_udp(self):
        records = [ResourceRecord("www.example.com", RRType.A, 60,
                                  A(f"10.0.0.{i}")) for i in range(1, 20)]
        message = make_cache_update("www.example.com", records)
        assert message.fits_in_udp()
        assert message.wire_size() <= MAX_UDP_PAYLOAD


class TestWireTemplate:
    def test_patched_id_only_difference(self):
        records = [ResourceRecord("www.example.com", RRType.A, 60,
                                  A("10.0.0.1"))]
        message = make_cache_update("www.example.com", records)
        template = WireTemplate(message)
        first = template.with_id(0x1234)
        second = template.with_id(0x4321)
        assert first[:2] == b"\x12\x34" and second[:2] == b"\x43\x21"
        assert first[2:] == second[2:]
        assert len(template) == message.wire_size()

    def test_patched_copy_decodes_to_same_message(self):
        records = [ResourceRecord("www.example.com", RRType.A, 60,
                                  A("10.0.0.1"))]
        message = make_cache_update("www.example.com", records)
        decoded = Message.from_wire(WireTemplate(message).with_id(777))
        assert decoded.id == 777
        assert decoded.opcode == Opcode.CACHE_UPDATE
        assert decoded.question[0].name == message.question[0].name
        assert decoded.answer[0].rdata == A("10.0.0.1")

    def test_id_wraps_to_16_bits(self):
        template = WireTemplate(make_query("a.example.com", RRType.A))
        assert template.with_id(0x1_0002)[:2] == b"\x00\x02"

    def test_snapshots_are_independent(self):
        """with_id returns immutable snapshots, not views of the buffer."""
        template = WireTemplate(make_query("a.example.com", RRType.A))
        first = template.with_id(1)
        template.with_id(2)
        assert first[:2] == b"\x00\x01"


class TestSizes:
    def test_wire_size_matches_encoding(self):
        query = make_query("www.example.com", RRType.A)
        assert query.wire_size() == len(query.to_wire())

    def test_typical_query_small(self):
        assert make_query("www.example.com", RRType.A).wire_size() < 50
