"""Tests for per-group measurement summaries (§3.2 categories)."""

import pytest

from repro.dnslib import Name
from repro.measurement import (
    ChangeTally,
    GroupSummary,
    ProbeResult,
    summarize_groups,
)
from repro.traces import class_by_index


def result(name, frequency, probes=100):
    changes = int(frequency * probes)
    return ProbeResult(Name.from_text(name), class_by_index(1), probes,
                       changes, ChangeTally(rotation=changes), [])


class TestSummarizeGroups:
    def test_groups_partition_results(self):
        results = [result("a.cdn.net", 0.5), result("b.cdn.net", 0.3),
                   result("c.dyn.org", 0.01)]
        labels = {Name.from_text("a.cdn.net"): "cdn",
                  Name.from_text("b.cdn.net"): "cdn",
                  Name.from_text("c.dyn.org"): "dyn"}
        groups = summarize_groups(results, labels)
        assert groups["cdn"].domains == 2
        assert groups["cdn"].mean_change_frequency == pytest.approx(0.4)
        assert groups["dyn"].domains == 1

    def test_unlabelled_results_skipped(self):
        results = [result("a.x.com", 0.5), result("mystery.net", 0.9)]
        groups = summarize_groups(results,
                                  {Name.from_text("a.x.com"): "known"})
        assert set(groups) == {"known"}

    def test_changed_share(self):
        results = [result("a.x.com", 0.0), result("b.x.com", 0.2)]
        labels = {Name.from_text("a.x.com"): "g",
                  Name.from_text("b.x.com"): "g"}
        assert summarize_groups(results, labels)["g"].changed_share == 0.5

    def test_empty(self):
        assert summarize_groups([], {}) == {}


class TestProviderCalibration:
    """The generator's provider-level calibration against §3.2."""

    @pytest.fixture(scope="class")
    def provider_summaries(self):
        from repro.measurement import DnsDynamicsProber, oracle_from_specs
        from repro.traces import PopulationConfig, generate_cdn_domains
        domains = generate_cdn_domains(PopulationConfig(cdn_count=20))
        prober = DnsDynamicsProber(oracle_from_specs(domains),
                                   max_probes_per_domain=400)
        results = prober.run_campaign(domains)
        labels = {d.name: d.provider for d in domains}
        return summarize_groups(results, labels)

    def test_akamai_near_ten_percent(self, provider_summaries):
        assert provider_summaries["akamai"].mean_change_frequency == \
            pytest.approx(0.10, abs=0.05)

    def test_speedera_near_hundred_percent(self, provider_summaries):
        assert provider_summaries["speedera"].mean_change_frequency > 0.9
