"""Tests for periodic timers."""

import pytest

from repro.net import PeriodicTimer


class TestPeriodicTimer:
    def test_fires_at_interval(self, simulator):
        ticks = []
        PeriodicTimer(simulator, 1.0, lambda: ticks.append(simulator.now))
        simulator.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_custom_start_delay(self, simulator):
        ticks = []
        PeriodicTimer(simulator, 1.0, lambda: ticks.append(simulator.now),
                      start_delay=0.25)
        simulator.run_until(2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop_prevents_further_ticks(self, simulator):
        ticks = []
        timer = PeriodicTimer(simulator, 1.0,
                              lambda: ticks.append(simulator.now))
        simulator.run_until(1.5)
        timer.stop()
        simulator.run_until(5.0)
        assert ticks == [1.0]
        assert not timer.running

    def test_stop_from_within_callback(self, simulator):
        ticks = []
        timer = PeriodicTimer(simulator, 1.0, lambda: (
            ticks.append(simulator.now),
            timer.stop() if len(ticks) >= 2 else None))
        simulator.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_zero_interval_rejected(self, simulator):
        with pytest.raises(ValueError):
            PeriodicTimer(simulator, 0.0, lambda: None)
