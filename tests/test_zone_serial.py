"""Tests for RFC 1982 serial arithmetic."""

import pytest

from repro.zone import serial_add, serial_gt, serial_lt, serial_max


class TestSerialAdd:
    def test_plain_addition(self):
        assert serial_add(1, 1) == 2

    def test_wraps_at_32_bits(self):
        assert serial_add(0xFFFFFFFF, 1) == 0

    def test_increment_bounds(self):
        with pytest.raises(ValueError):
            serial_add(0, 1 << 31)
        with pytest.raises(ValueError):
            serial_add(0, -1)

    def test_max_increment_ok(self):
        serial_add(0, (1 << 31) - 1)


class TestSerialCompare:
    def test_simple_ordering(self):
        assert serial_gt(2, 1)
        assert not serial_gt(1, 2)
        assert serial_lt(1, 2)

    def test_equal_is_not_greater(self):
        assert not serial_gt(5, 5)

    def test_wraparound_ordering(self):
        # 0 is "after" 0xFFFFFFFF in sequence space.
        assert serial_gt(0, 0xFFFFFFFF)
        assert not serial_gt(0xFFFFFFFF, 0)

    def test_half_space_is_incomparable(self):
        a, b = 0, 1 << 31
        assert not serial_gt(a, b)
        assert not serial_gt(b, a)

    def test_just_under_half_space(self):
        assert serial_gt((1 << 31) - 1, 0)
        assert not serial_gt(0, (1 << 31) - 1)

    def test_rfc_examples(self):
        # RFC 1982 §5.1 examples with SERIAL_BITS=32.
        assert serial_gt(44, 43)
        assert serial_gt(100, 0)
        assert serial_gt(0, 4294967295)


class TestSerialMax:
    def test_picks_later(self):
        assert serial_max(1, 2) == 2
        assert serial_max(0, 0xFFFFFFFF) == 0

    def test_equal(self):
        assert serial_max(7, 7) == 7
