"""Tests for the full-report generation tool."""

import os

import pytest

from repro.report import read_csv
from repro.tools import report_tool


@pytest.fixture(scope="module")
def report_dir(tmp_path_factory):
    outdir = str(tmp_path_factory.mktemp("report"))
    rc = report_tool.main([outdir, "--scale", "0.2", "--seed", "7"])
    assert rc == 0
    return outdir


class TestReportTool:
    def test_all_artifacts_written(self, report_dir):
        expected = {
            "figure1_domain_distribution.csv",
            "figure2_change_frequency.csv",
            "figure4_poisson_cv.csv",
            "figure5_lease_comparison.csv",
            "REPORT.md",
        }
        assert expected <= set(os.listdir(report_dir))

    def test_figure2_covers_all_classes(self, report_dir):
        rows = read_csv(os.path.join(report_dir,
                                     "figure2_change_frequency.csv"))
        classes = {row[0] for row in rows[1:]}
        assert classes == {"1", "2", "3", "4", "5"}

    def test_figure5_has_both_schemes(self, report_dir):
        rows = read_csv(os.path.join(report_dir,
                                     "figure5_lease_comparison.csv"))
        schemes = {row[0] for row in rows[1:]}
        assert schemes == {"fixed", "dynamic"}

    def test_figure4_has_three_nameservers(self, report_dir):
        rows = read_csv(os.path.join(report_dir, "figure4_poisson_cv.csv"))
        nameservers = {row[0] for row in rows[1:]}
        assert nameservers == {"1", "2", "3"}

    def test_report_md_mentions_every_figure(self, report_dir):
        text = open(os.path.join(report_dir, "REPORT.md")).read()
        for marker in ("Figure 1", "Figure 2", "Figure 4", "Figure 5",
                       "Figure 7", "512 B"):
            assert marker in text
