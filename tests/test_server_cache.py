"""Tests for the resolver cache: TTL expiry, negative entries, leases."""

import pytest

from repro.dnslib import A, Name, RRType
from repro.server import ResolverCache


@pytest.fixture
def cache():
    return ResolverCache(capacity=100)


class TestPositiveEntries:
    def test_put_get(self, cache, a_rrset):
        cache.put(a_rrset("www.x.com", 60, "1.1.1.1"), now=0.0)
        entry = cache.get("www.x.com", RRType.A, now=10.0)
        assert entry is not None
        assert entry.remaining_ttl(10.0) == 50

    def test_expiry(self, cache, a_rrset):
        cache.put(a_rrset("www.x.com", 60, "1.1.1.1"), now=0.0)
        assert cache.get("www.x.com", RRType.A, now=60.0) is None
        assert cache.stats.expired == 1

    def test_just_before_expiry_still_live(self, cache, a_rrset):
        cache.put(a_rrset("www.x.com", 60, "1.1.1.1"), now=0.0)
        assert cache.get("www.x.com", RRType.A, now=59.999) is not None

    def test_miss_counted(self, cache):
        assert cache.get("nope.x.com", RRType.A, now=0.0) is None
        assert cache.stats.misses == 1

    def test_ttl_clamping(self, a_rrset):
        cache = ResolverCache(min_ttl=10, max_ttl=100)
        entry_low = cache.put(a_rrset("a.x.com", 1, "1.1.1.1"), now=0.0)
        entry_high = cache.put(a_rrset("b.x.com", 10**6, "1.1.1.1"), now=0.0)
        assert entry_low.expires_at == 10.0
        assert entry_high.expires_at == 100.0

    def test_stored_copy_isolated(self, cache, a_rrset):
        rrset = a_rrset("www.x.com", 60, "1.1.1.1")
        cache.put(rrset, now=0.0)
        rrset.add(A("2.2.2.2"))
        assert len(cache.peek("www.x.com", RRType.A).rrset) == 1

    def test_replacing_entry(self, cache, a_rrset):
        cache.put(a_rrset("www.x.com", 60, "1.1.1.1"), now=0.0)
        cache.put(a_rrset("www.x.com", 60, "2.2.2.2"), now=5.0)
        entry = cache.get("www.x.com", RRType.A, now=6.0)
        assert entry.rrset.rdatas == (A("2.2.2.2"),)


class TestNegativeEntries:
    def test_negative_hit(self, cache):
        cache.put_negative("gone.x.com", RRType.A, soa_minimum=30, now=0.0)
        entry = cache.get("gone.x.com", RRType.A, now=10.0)
        assert entry is not None and entry.negative
        assert cache.stats.negative_hits == 1

    def test_negative_expiry(self, cache):
        cache.put_negative("gone.x.com", RRType.A, soa_minimum=30, now=0.0)
        assert cache.get("gone.x.com", RRType.A, now=31.0) is None


class TestLRU:
    def test_eviction_order(self, a_rrset):
        cache = ResolverCache(capacity=2)
        cache.put(a_rrset("a.x.com", 60, "1.1.1.1"), now=0.0)
        cache.put(a_rrset("b.x.com", 60, "1.1.1.1"), now=0.0)
        cache.get("a.x.com", RRType.A, now=1.0)  # touch a → b is LRU
        cache.put(a_rrset("c.x.com", 60, "1.1.1.1"), now=2.0)
        assert cache.peek("b.x.com", RRType.A) is None
        assert cache.peek("a.x.com", RRType.A) is not None
        assert cache.stats.evictions == 1


class TestLeases:
    def test_lease_keeps_entry_past_ttl(self, cache, a_rrset):
        """The DNScup semantic: coherent-by-lease entries outlive TTL."""
        cache.put(a_rrset("www.x.com", 60, "1.1.1.1"), now=0.0,
                  lease_until=200.0)
        entry = cache.get("www.x.com", RRType.A, now=100.0)
        assert entry is not None
        assert entry.has_lease(100.0)

    def test_entry_dies_after_lease_and_ttl(self, cache, a_rrset):
        cache.put(a_rrset("www.x.com", 60, "1.1.1.1"), now=0.0,
                  lease_until=200.0)
        assert cache.get("www.x.com", RRType.A, now=201.0) is None

    def test_coherent_hits_counted(self, cache, a_rrset):
        cache.put(a_rrset("www.x.com", 60, "1.1.1.1"), now=0.0,
                  lease_until=100.0)
        cache.get("www.x.com", RRType.A, now=1.0)
        assert cache.stats.coherent_hits == 1

    def test_set_lease_on_existing(self, cache, a_rrset):
        cache.put(a_rrset("www.x.com", 60, "1.1.1.1"), now=0.0)
        assert cache.set_lease("www.x.com", RRType.A, lease_until=500.0)
        assert not cache.set_lease("missing.x.com", RRType.A, 500.0)
        assert cache.peek("www.x.com", RRType.A).has_lease(400.0)

    def test_entries_with_valid_lease(self, cache, a_rrset):
        cache.put(a_rrset("a.x.com", 60, "1.1.1.1"), now=0.0, lease_until=50.0)
        cache.put(a_rrset("b.x.com", 60, "1.1.1.1"), now=0.0, lease_until=200.0)
        cache.put(a_rrset("c.x.com", 60, "1.1.1.1"), now=0.0)
        live = cache.entries_with_valid_lease(now=100.0)
        assert [e.rrset.name for e in live] == [Name.from_text("b.x.com")]


class TestCacheUpdate:
    def test_apply_overwrites_in_place(self, cache, a_rrset):
        cache.put(a_rrset("www.x.com", 60, "1.1.1.1"), now=0.0,
                  lease_until=500.0)
        assert cache.apply_cache_update(a_rrset("www.x.com", 60, "9.9.9.9"),
                                        now=30.0)
        entry = cache.peek("www.x.com", RRType.A)
        assert entry.rrset.rdatas == (A("9.9.9.9"),)
        assert entry.expires_at == 90.0       # TTL restarted
        assert entry.lease_until == 500.0     # lease preserved
        assert cache.stats.cache_updates_applied == 1

    def test_apply_to_missing_entry_is_noop(self, cache, a_rrset):
        assert not cache.apply_cache_update(a_rrset("nope.x.com", 60, "1.1.1.1"),
                                            now=0.0)


class TestMaintenance:
    def test_purge_expired(self, cache, a_rrset):
        cache.put(a_rrset("a.x.com", 10, "1.1.1.1"), now=0.0)
        cache.put(a_rrset("b.x.com", 100, "1.1.1.1"), now=0.0)
        assert cache.purge_expired(now=50.0) == 1
        assert len(cache) == 1

    def test_flush(self, cache, a_rrset):
        cache.put(a_rrset("a.x.com", 10, "1.1.1.1"), now=0.0)
        cache.flush()
        assert len(cache) == 0

    def test_remove(self, cache, a_rrset):
        cache.put(a_rrset("a.x.com", 10, "1.1.1.1"), now=0.0)
        assert cache.remove("a.x.com", RRType.A)
        assert not cache.remove("a.x.com", RRType.A)

    def test_hit_rate(self, cache, a_rrset):
        cache.put(a_rrset("a.x.com", 100, "1.1.1.1"), now=0.0)
        cache.get("a.x.com", RRType.A, now=1.0)
        cache.get("missing.x.com", RRType.A, now=1.0)
        assert cache.stats.hit_rate == 0.5

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResolverCache(capacity=0)
