"""Tests for the wire reader/writer and name compression."""

import pytest

from repro.dnslib import Name, WireFormatError, WireReader, WireWriter


class TestPrimitives:
    def test_u8_roundtrip(self):
        writer = WireWriter()
        writer.write_u8(0xAB)
        assert WireReader(writer.getvalue()).read_u8() == 0xAB

    def test_u16_roundtrip(self):
        writer = WireWriter()
        writer.write_u16(0xBEEF)
        assert WireReader(writer.getvalue()).read_u16() == 0xBEEF

    def test_u32_roundtrip(self):
        writer = WireWriter()
        writer.write_u32(0xDEADBEEF)
        assert WireReader(writer.getvalue()).read_u32() == 0xDEADBEEF

    def test_string_roundtrip(self):
        writer = WireWriter()
        writer.write_string(b"hello")
        assert WireReader(writer.getvalue()).read_string() == b"hello"

    def test_string_over_255_rejected(self):
        writer = WireWriter()
        with pytest.raises(WireFormatError):
            writer.write_string(b"x" * 256)

    def test_truncated_read_raises(self):
        reader = WireReader(b"\x00")
        with pytest.raises(WireFormatError):
            reader.read_u16()

    def test_remaining_and_seek(self):
        reader = WireReader(b"\x01\x02\x03")
        assert reader.remaining == 3
        reader.read_u8()
        assert reader.remaining == 2
        reader.seek(0)
        assert reader.remaining == 3

    def test_seek_out_of_range(self):
        with pytest.raises(WireFormatError):
            WireReader(b"ab").seek(5)


class TestNames:
    def roundtrip(self, *names, compress=True):
        writer = WireWriter(compress=compress)
        for name in names:
            writer.write_name(Name.from_text(name))
        data = writer.getvalue()
        reader = WireReader(data)
        decoded = [reader.read_name() for _ in names]
        assert [d.to_text() for d in decoded] == \
            [Name.from_text(n).to_text() for n in names]
        return data

    def test_root_roundtrip(self):
        writer = WireWriter()
        writer.write_name(Name.root())
        assert writer.getvalue() == b"\x00"

    def test_simple_roundtrip(self):
        self.roundtrip("www.example.com")

    def test_compression_reuses_suffix(self):
        data = self.roundtrip("www.example.com", "mail.example.com")
        # The second name should be 'mail' label (5) + 2-byte pointer = 7,
        # versus 18 uncompressed.
        uncompressed = self.roundtrip("www.example.com", "mail.example.com",
                                      compress=False)
        assert len(data) < len(uncompressed)
        assert len(data) == 17 + 5 + 2

    def test_full_name_pointer(self):
        data = self.roundtrip("example.com", "example.com")
        assert len(data) == 13 + 2  # second occurrence is one pointer

    def test_compression_case_insensitive(self):
        """Differently-cased suffixes share one pointer target.

        The decoded second name inherits the first occurrence's spelling
        (as real compressing servers do), so compare Name equality —
        which is case-insensitive — rather than text.
        """
        writer = WireWriter()
        writer.write_name(Name.from_text("www.EXAMPLE.com"))
        writer.write_name(Name.from_text("mail.example.COM"))
        data = writer.getvalue()
        assert len(data) < 2 * 17
        reader = WireReader(data)
        assert reader.read_name() == Name.from_text("www.example.com")
        assert reader.read_name() == Name.from_text("mail.example.com")

    def test_no_compression_when_disabled(self):
        data = self.roundtrip("a.b", "a.b", compress=False)
        assert len(data) == 2 * Name.from_text("a.b").wire_length()

    def test_pointer_loop_rejected(self):
        # A pointer pointing at itself.
        data = b"\xc0\x00"
        with pytest.raises(WireFormatError):
            WireReader(data).read_name()

    def test_forward_pointer_rejected(self):
        # Pointer to offset 2 from offset 0 (forward).
        data = b"\xc0\x02\x01a\x00"
        with pytest.raises(WireFormatError):
            WireReader(data).read_name()

    def test_bad_label_tag_rejected(self):
        with pytest.raises(WireFormatError):
            WireReader(b"\x80abc").read_name()

    def test_label_past_end_rejected(self):
        with pytest.raises(WireFormatError):
            WireReader(b"\x05ab").read_name()

    def test_reader_position_after_pointer(self):
        """After a compressed name the cursor must resume after the pointer."""
        writer = WireWriter()
        writer.write_name(Name.from_text("example.com"))
        writer.write_name(Name.from_text("example.com"))
        writer.write_u16(0x1234)
        reader = WireReader(writer.getvalue())
        reader.read_name()
        reader.read_name()
        assert reader.read_u16() == 0x1234

    def test_deep_chain_roundtrip(self):
        names = [f"h{i}.deep.example.org" for i in range(20)]
        self.roundtrip(*names)
