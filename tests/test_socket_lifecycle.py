"""Socket lifecycle contract, held on both substrates.

The guarantees under test:

* :meth:`Socket.close` cancels every pending request — no response
  handler and no timeout callback ever fires afterwards;
* a request whose retry budget is exhausted delivers exactly one
  ``(None, None)`` to its handler;
* a response arriving after ``close()`` is not delivered.

Each test runs twice, once on the simulated substrate
(:class:`Simulator` + :class:`Network`) and once on the live one
(:class:`LiveClock` + :class:`AioNetwork`, real loopback sockets) — the
whole point of the backend seam is that this file cannot tell which is
which.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.net import (
    AioNetwork,
    Host,
    LiveClock,
    Network,
    RetryPolicy,
    Simulator,
    loopback_available,
)


@dataclasses.dataclass
class Substrate:
    """One clock+network pair plus its teardown."""
    clock: object
    network: object

    def run(self) -> None:
        self.clock.run()

    def close(self) -> None:
        if isinstance(self.network, AioNetwork):
            self.network.close()
            self.clock.loop.close()


def _sim_substrate() -> Substrate:
    simulator = Simulator()
    return Substrate(simulator, Network(simulator, seed=7))


def _live_substrate() -> Substrate:
    clock = LiveClock()
    return Substrate(clock, AioNetwork(clock))


@pytest.fixture(params=[
    pytest.param("sim", id="simulated"),
    pytest.param("live", id="live", marks=pytest.mark.skipif(
        not loopback_available(),
        reason="loopback UDP unavailable on this platform")),
])
def substrate(request):
    sub = _sim_substrate() if request.param == "sim" else _live_substrate()
    yield sub
    sub.close()


FAST_RETRY = RetryPolicy(initial_timeout=0.02, max_attempts=2)


def test_close_cancels_pending_requests(substrate):
    client = Host(substrate.network, "10.0.0.1")
    sock = client.socket()
    calls = []
    sock.request(b"\x00\x01\x00\x00", ("203.0.113.9", 53), 1,
                 lambda payload, src: calls.append((payload, src)),
                 retry=FAST_RETRY)
    sock.close()
    substrate.run()
    # Neither a response nor the timeout (None, None) may fire: the
    # request died with the socket.
    assert calls == []
    assert substrate.clock.pending == 0


def test_timeout_path_delivers_single_none_none(substrate):
    client = Host(substrate.network, "10.0.0.1")
    sock = client.socket()
    calls = []
    attempts = []
    sock.request(b"\x00\x02\x00\x00", ("203.0.113.9", 53), 2,
                 lambda payload, src: calls.append((payload, src)),
                 retry=FAST_RETRY, on_attempt=attempts.append)
    substrate.run()
    assert calls == [(None, None)]
    assert attempts == [1, 2]
    # The pending entry is forgotten: the same key is reusable.
    sock.request(b"\x00\x02\x00\x00", ("203.0.113.9", 53), 2,
                 lambda payload, src: calls.append((payload, src)),
                 retry=FAST_RETRY)
    substrate.run()
    assert calls == [(None, None), (None, None)]


def test_late_response_after_close_not_delivered(substrate):
    server = Host(substrate.network, "192.0.2.1")
    client = Host(substrate.network, "10.0.0.1")
    ssock = server.socket(53)
    queries = []
    ssock.on_receive(lambda payload, src, dst: queries.append((payload, src)))

    csock = client.socket()
    calls = []
    csock.request(b"\x00\x03\x00\x00", ("192.0.2.1", 53), 3,
                  lambda payload, src: calls.append((payload, src)),
                  retry=RetryPolicy(initial_timeout=0.5, max_attempts=1))
    # Let the query reach the server, then close the client socket
    # before the server answers.
    substrate.clock.run_for(0.05)
    assert queries
    client_endpoint = queries[0][1]
    csock.close()
    response = bytearray(queries[0][0])
    response[2] |= 0x80
    ssock.send(bytes(response), client_endpoint)
    substrate.run()
    assert calls == []


def test_timeout_and_close_leave_no_timers(substrate):
    client = Host(substrate.network, "10.0.0.1")
    first = client.socket()
    second = client.socket()
    first.request(b"\x00\x04\x00\x00", ("203.0.113.9", 53), 4,
                  lambda payload, src: None, retry=FAST_RETRY)
    second.request(b"\x00\x05\x00\x00", ("203.0.113.9", 53), 5,
                   lambda payload, src: None, retry=FAST_RETRY)
    first.close()
    substrate.run()
    assert substrate.clock.pending == 0
