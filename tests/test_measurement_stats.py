"""Tests for measurement statistics: PDFs, lifetimes, CV analysis."""

import math
import random

import pytest

from repro.dnslib import Name
from repro.measurement import (
    ChangeTally,
    DnsDynamicsProber,
    ProbeResult,
    change_frequency_pdf,
    changed_share,
    coefficient_of_variation,
    cv_vs_caching_period,
    interarrival_cv_per_domain,
    mean_change_frequency,
    mean_with_ci95,
    oracle_from_specs,
    redundancy_factor,
    summarize_campaign,
    summarize_class,
)
from repro.traces import QueryEvent, class_by_index


def fake_result(frequency, class_index=3, physical=0, rotation=0, growth=0):
    ttl_class = class_by_index(class_index)
    probes = 100
    changes = int(frequency * probes)
    return ProbeResult(Name.from_text("d.x.com"), ttl_class, probes, changes,
                       ChangeTally(relocation=physical, rotation=rotation,
                                   growth=growth), [])


class TestPdf:
    def test_masses_sum_to_one(self):
        results = [fake_result(f) for f in (0.0, 0.1, 0.1, 0.5, 0.9)]
        pdf = change_frequency_pdf(results, bins=10)
        assert sum(mass for _, mass in pdf) == pytest.approx(1.0)

    def test_zero_spike_for_stable_population(self):
        results = [fake_result(0.0) for _ in range(20)]
        pdf = change_frequency_pdf(results, bins=10)
        assert pdf[0][1] == pytest.approx(1.0)

    def test_empty_results(self):
        pdf = change_frequency_pdf([], bins=5)
        assert all(mass == 0.0 for _, mass in pdf)

    def test_frequency_one_lands_in_last_bin(self):
        pdf = change_frequency_pdf([fake_result(1.0)], bins=10)
        assert pdf[-1][1] == pytest.approx(1.0)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            change_frequency_pdf([], bins=0)


class TestSummaries:
    def test_mean_and_changed_share(self):
        results = [fake_result(0.0), fake_result(0.2)]
        assert mean_change_frequency(results) == pytest.approx(0.1)
        assert changed_share(results) == pytest.approx(0.5)

    def test_summarize_class_lifetime(self):
        # class 3 (300 s resolution), mean frequency 0.03 → ~10000 s.
        results = [fake_result(0.03, class_index=3, physical=3)]
        summary = summarize_class(3, results)
        assert summary.mean_lifetime == pytest.approx(300 / 0.03)
        assert summary.physical_share == 1.0

    def test_summarize_campaign_groups(self):
        results = [fake_result(0.0, class_index=1),
                   fake_result(0.1, class_index=5, rotation=10)]
        summaries = summarize_campaign(results)
        assert set(summaries) == {1, 5}

    def test_infinite_lifetime_for_stable_class(self):
        summary = summarize_class(4, [fake_result(0.0, class_index=4)])
        assert math.isinf(summary.mean_lifetime)


class TestRedundancy:
    def test_cdn_redundancy_example(self):
        """§3.2: Akamai TTL 20 s with ~200 s lifetimes → ~10× waste."""
        assert redundancy_factor(ttl=20.0, mean_lifetime=200.0) == \
            pytest.approx(10.0)

    def test_dyn_redundancy_example(self):
        """§3.2: Dyn domains fetch ~25× more than needed."""
        assert redundancy_factor(ttl=300.0, mean_lifetime=7500.0) == \
            pytest.approx(25.0)

    def test_infinite_for_never_changing(self):
        assert math.isinf(redundancy_factor(60.0, math.inf))

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            redundancy_factor(0.0, 100.0)


class TestCv:
    def test_poisson_intervals_cv_near_one(self):
        rng = random.Random(0)
        intervals = [rng.expovariate(1.0) for _ in range(20_000)]
        assert coefficient_of_variation(intervals) == pytest.approx(1.0,
                                                                    abs=0.05)

    def test_deterministic_intervals_cv_zero(self):
        assert coefficient_of_variation([5.0] * 100) == 0.0

    def test_bursty_intervals_cv_above_one(self):
        intervals = [0.001] * 50 + [100.0] * 5
        assert coefficient_of_variation(intervals) > 1.0

    def test_needs_two_intervals(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([1.0])

    def test_per_domain_cv_skips_sparse(self):
        events = [QueryEvent(float(i), 0, Name.from_text("few.x.com"))
                  for i in range(3)]
        assert interarrival_cv_per_domain(events, min_queries=10) == {}

    def test_per_domain_cv_computed(self):
        rng = random.Random(1)
        t = 0.0
        events = []
        for _ in range(500):
            t += rng.expovariate(0.5)
            events.append(QueryEvent(t, 0, Name.from_text("hot.x.com")))
        cvs = interarrival_cv_per_domain(events)
        assert cvs[Name.from_text("hot.x.com")] == pytest.approx(1.0, abs=0.15)


class TestConfidenceIntervals:
    def test_mean_with_ci(self):
        stats = mean_with_ci95([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.low < 2.0 < stats.high
        assert stats.count == 3

    def test_single_value_zero_width(self):
        stats = mean_with_ci95([5.0])
        assert stats.half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_with_ci95([])

    def test_ci_shrinks_with_samples(self):
        rng = random.Random(2)
        small = mean_with_ci95([rng.gauss(0, 1) for _ in range(10)])
        large = mean_with_ci95([rng.gauss(0, 1) for _ in range(1000)])
        assert large.half_width < small.half_width


class TestFigure4Curve:
    def test_cv_approaches_one_with_client_caching(self):
        """Figure 4: longer client caching → mean CV closer to 1."""
        rng = random.Random(3)
        events = []
        # 30 domains with Poisson arrivals, then bursts injected by
        # doubling events (each arrival repeated quickly) to push CV > 1
        # before thinning.
        for d in range(30):
            name = Name.from_text(f"d{d}.x.com")
            t = 0.0
            for _ in range(300):
                t += rng.expovariate(1 / 30.0)
                events.append(QueryEvent(t, client=rng.randrange(5), name=name))
                events.append(QueryEvent(t + 0.5, client=rng.randrange(5),
                                         name=name))
        curve = cv_vs_caching_period(events, [1.0, 100.0, 1000.0])
        assert len(curve) == 3
        deviations = [abs(stats.mean - 1.0) for _, stats in curve]
        assert deviations[-1] < deviations[0]

    def test_curve_reports_ci(self):
        rng = random.Random(4)
        events = []
        for d in range(10):
            name = Name.from_text(f"d{d}.x.com")
            t = 0.0
            for _ in range(200):
                t += rng.expovariate(1 / 10.0)
                events.append(QueryEvent(t, client=0, name=name))
        curve = cv_vs_caching_period(events, [1.0])
        _, stats = curve[0]
        assert stats.half_width > 0.0
