"""LiveTestbed: the Figure 7 topology over real loopback sockets.

A reduced-zone live testbed (for speed) must run the identical §5.2
scenario as the simulated one and come out with a clean protocol audit
— the same acceptance the CI ``live-transport`` job enforces at full
scale through ``repro-live``.
"""

from __future__ import annotations

import pytest

from repro.net import LiveClock, loopback_available
from repro.sim import LiveTestbed, TestbedConfig, make_live_testbed, \
    run_figure7_scenario

pytestmark = pytest.mark.skipif(
    not loopback_available(),
    reason="loopback UDP unavailable on this platform")


SMALL = TestbedConfig(zone_count=8, observability=True)


def test_live_scenario_audits_clean():
    with make_live_testbed(SMALL) as testbed:
        assert isinstance(testbed.simulator, LiveClock)
        summary = run_figure7_scenario(testbed, updates=3)
        assert summary["updates_applied"] == 3
        assert summary["acks_received"] == summary["notifications_sent"] > 0
        report = testbed.audit()
        assert report.ok, report.as_dict()
        # The live trace is wall-clock: epoch-relative, monotonic.
        times = [t for t, _name, _fields in testbed.observability.trace.events]
        assert times and times[0] >= 0.0
        assert all(a <= b for a, b in zip(times, times[1:]))


def test_live_testbed_shares_topology_with_sim():
    """Same zones, same servers, same domains — only the substrate moves."""
    with make_live_testbed(TestbedConfig(zone_count=8)) as testbed:
        assert len(testbed.zones) == 8
        assert len(testbed.slaves) == 2
        assert len(testbed.caches) == 2
        assert len(testbed.clients) == 2
        assert testbed.dnscup is not None


def test_sanitized_live_scenario_is_clean():
    """The full scenario under the runtime sanitizer: clean audit AND
    zero sanitizer reports — the acceptance the CI job gates with
    ``repro-live --sanitize``."""
    with make_live_testbed(SMALL, sanitize=True) as testbed:
        assert testbed.sanitizer is not None
        run_figure7_scenario(testbed, updates=3)
        report = testbed.audit()
        assert report.ok, report.as_dict()
        assert testbed.sanitizer.report() == []


def test_unsanitized_testbed_has_no_sanitizer():
    with make_live_testbed(SMALL) as testbed:
        assert testbed.sanitizer is None


def test_close_releases_all_sockets():
    testbed = LiveTestbed(TestbedConfig(zone_count=8))
    master_endpoint = (testbed.master_host.address, 53)
    assert testbed.network.is_bound(master_endpoint)
    testbed.close()
    assert not testbed.network.is_bound(master_endpoint)
    assert testbed.simulator.loop.is_closed()
