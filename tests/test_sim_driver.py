"""Tests for the trace-driven lease simulation (Figure 5 machinery)."""

import pytest

from repro.dnslib import Name
from repro.sim import (
    dynamic_lease_fn,
    figure5_curves,
    fixed_lease_fn,
    logspace,
    no_lease_fn,
    simulate_lease_trace,
    train_pair_rates,
)
from repro.traces import (
    PopulationConfig,
    QueryEvent,
    WorkloadConfig,
    generate_population,
    generate_queries,
)


def synthetic_events(rate_per_pair, duration, names=("a.x.com",),
                     nameservers=(0,)):
    """Deterministic evenly-spaced queries per (name, ns) pair."""
    events = []
    for name in names:
        for ns in nameservers:
            interval = 1.0 / rate_per_pair
            t = 0.0
            while t < duration:
                events.append(QueryEvent(t, client=ns, nameserver=ns,
                                         name=Name.from_text(name)))
                t += interval
    events.sort(key=lambda e: e.time)
    return events


class TestSimulateLeaseTrace:
    def test_no_lease_is_pure_polling(self):
        events = synthetic_events(0.1, 1000.0)
        result = simulate_lease_trace(events, {}, lambda n: 100.0,
                                      no_lease_fn(), 1000.0)
        assert result.upstream_messages == result.total_queries
        assert result.query_rate_percentage == 100.0
        assert result.storage_percentage == 0.0

    def test_lease_absorbs_queries(self):
        # One query every 10 s, lease 100 s → ~1 upstream per 100+10 s.
        events = synthetic_events(0.1, 1100.0)
        result = simulate_lease_trace(events, {}, lambda n: 100.0,
                                      fixed_lease_fn(100.0), 1100.0)
        assert result.total_queries == 110
        assert result.upstream_messages == pytest.approx(10, abs=2)

    def test_analytical_agreement_for_fixed_lease(self):
        """Event simulation must agree with §4.1's renewal-rate formula
        for Poisson-ish arrivals."""
        import random
        rng = random.Random(7)
        rate, lease, duration = 0.2, 50.0, 50_000.0
        t, events = 0.0, []
        while t < duration:
            t += rng.expovariate(rate)
            events.append(QueryEvent(t, 0, Name.from_text("p.x.com"), 0))
        result = simulate_lease_trace(events, {}, lambda n: lease,
                                      fixed_lease_fn(lease), duration)
        expected_rate = 1.0 / (lease + 1.0 / rate)   # Eq. 4.2
        measured = result.upstream_messages / duration
        assert measured == pytest.approx(expected_rate, rel=0.1)
        expected_probability = lease / (lease + 1.0 / rate)  # Eq. 4.1
        assert result.storage_percentage / 100 == \
            pytest.approx(expected_probability, rel=0.1)

    def test_dynamic_grants_only_hot_pairs(self):
        events = (synthetic_events(1.0, 100.0, names=("hot.x.com",))
                  + synthetic_events(0.01, 100.0, names=("cold.x.com",)))
        events.sort(key=lambda e: e.time)
        rates = {(Name.from_text("hot.x.com"), 0): 1.0,
                 (Name.from_text("cold.x.com"), 0): 0.01}
        result = simulate_lease_trace(events, rates, lambda n: 1000.0,
                                      dynamic_lease_fn(0.5), 100.0,
                                      scheme="dynamic")
        # hot: 1 grant; cold: every query polls.
        cold_queries = sum(1 for e in events
                           if e.name == Name.from_text("cold.x.com"))
        assert result.grants == 1
        assert result.upstream_messages == cold_queries + 1

    def test_lease_clipped_at_duration(self):
        events = synthetic_events(0.1, 10.0)
        result = simulate_lease_trace(events, {}, lambda n: 1e9,
                                      fixed_lease_fn(1e9), 10.0)
        assert result.storage_percentage <= 100.0


class TestTraining:
    def test_rates_from_prefix_only(self):
        events = synthetic_events(0.1, 1000.0)
        rates = train_pair_rates(events, training_window=100.0)
        key = (Name.from_text("a.x.com"), 0)
        assert rates[key] == pytest.approx(0.1, rel=0.1)


class TestFigure5:
    @pytest.fixture(scope="class")
    def curves(self):
        population = generate_population(PopulationConfig(
            regular_per_tld=10, cdn_count=10, dyn_count=10))
        config = WorkloadConfig(duration=7200.0, clients=30, nameservers=3,
                                total_request_rate=2.0, seed=17)
        events = list(generate_queries(population, config))
        # Thresholds at quantiles of the trained pair rates give an even
        # sweep of the storage axis regardless of the rate distribution.
        rates = sorted(train_pair_rates(
            events, config.duration / 7.0).values())
        thresholds = [0.0] + [rates[int(q * (len(rates) - 1))]
                              for q in (0.1, 0.3, 0.5, 0.7, 0.9)] \
            + [rates[-1] * 2]
        return figure5_curves(
            events, population, config.duration,
            fixed_lengths=logspace(10.0, 100_000.0, 6),
            rate_thresholds=thresholds)

    def test_polling_baseline_is_100_percent(self, curves):
        assert curves.polling.query_rate_percentage == 100.0

    def test_fixed_curve_tradeoff_monotone(self, curves):
        storages = [r.storage_percentage for r in curves.fixed]
        rates = [r.query_rate_percentage for r in curves.fixed]
        assert storages == sorted(storages)
        assert rates == sorted(rates, reverse=True)

    def test_dynamic_thresholds_sweep_storage(self, curves):
        storages = [r.storage_percentage for r in curves.dynamic]
        assert storages == sorted(storages, reverse=True)

    def test_dynamic_dominates_fixed_at_low_storage(self, curves):
        """The paper's headline (Figure 5b): at equal small storage the
        dynamic scheme sends far fewer upstream messages."""
        from repro.sim import interpolate_at_storage
        fixed_points = curves.fixed_points()
        target_points = [p for p in curves.dynamic_points()
                         if 0.1 < p[0] < 60.0]
        assert target_points, "threshold sweep produced no mid-range point"
        wins = 0
        for storage, dynamic_rate in target_points:
            fixed_rate = interpolate_at_storage(fixed_points, storage)
            if dynamic_rate <= fixed_rate + 1e-9:
                wins += 1
        assert wins >= len(target_points) * 0.7


class TestLogspace:
    def test_endpoints_and_monotone(self):
        values = logspace(1.0, 1000.0, 4)
        assert values[0] == pytest.approx(1.0)
        assert values[-1] == pytest.approx(1000.0)
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            logspace(0.0, 10.0, 3)
        with pytest.raises(ValueError):
            logspace(10.0, 1.0, 3)
        with pytest.raises(ValueError):
            logspace(1.0, 10.0, 1)
