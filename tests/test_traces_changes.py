"""Tests for the DN2IP change processes."""

import pytest

from repro.traces import (
    AddressGrowth,
    AddressRotation,
    CAUSE_GROWTH,
    CAUSE_RELOCATION,
    CAUSE_ROTATION,
    CompositeProcess,
    PoissonRelocation,
    StableProcess,
    random_ipv4,
)


class TestStable:
    def test_never_changes(self):
        process = StableProcess(["1.1.1.1"])
        assert process.events_between(0, 1e9) == []
        assert process.addresses_at(12345) == ("1.1.1.1",)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StableProcess([])


class TestPoissonRelocation:
    def test_deterministic_for_seed(self):
        a = PoissonRelocation(["1.1.1.1"], 100.0, seed=7)
        b = PoissonRelocation(["1.1.1.1"], 100.0, seed=7)
        assert a.events_between(0, 1000) == b.events_between(0, 1000)

    def test_different_seeds_differ(self):
        a = PoissonRelocation(["1.1.1.1"], 100.0, seed=7)
        b = PoissonRelocation(["1.1.1.1"], 100.0, seed=8)
        assert a.events_between(0, 1000) != b.events_between(0, 1000)

    def test_mean_interval_close_to_lifetime(self):
        process = PoissonRelocation(["1.1.1.1"], 100.0, seed=1)
        events = process.events_between(0, 100_000)
        assert len(events) == pytest.approx(1000, rel=0.15)

    def test_all_events_are_physical(self):
        process = PoissonRelocation(["1.1.1.1"], 50.0, seed=2)
        events = process.events_between(0, 5000)
        assert events
        assert all(e.cause == CAUSE_RELOCATION and e.is_physical
                   for e in events)

    def test_relocation_changes_address(self):
        process = PoissonRelocation(["1.1.1.1"], 50.0, seed=3)
        events = process.events_between(0, 1000)
        previous = ("1.1.1.1",)
        for event in events:
            assert event.addresses != previous
            previous = event.addresses

    def test_overlapping_windows_consistent(self):
        process = PoissonRelocation(["1.1.1.1"], 100.0, seed=4)
        full = process.events_between(0, 2000)
        head = process.events_between(0, 1000)
        tail = process.events_between(1000, 2000)
        assert head + tail == full

    def test_addresses_at_tracks_events(self):
        process = PoissonRelocation(["1.1.1.1"], 100.0, seed=5)
        events = process.events_between(0, 1000)
        if events:
            first = events[0]
            assert process.addresses_at(first.time - 0.001) == ("1.1.1.1",)
            assert process.addresses_at(first.time) == first.addresses

    def test_invalid_lifetime(self):
        with pytest.raises(ValueError):
            PoissonRelocation(["1.1.1.1"], 0.0, seed=1)


class TestAddressGrowth:
    def test_grows_to_ceiling(self):
        process = AddressGrowth(["1.1.1.1"], mean_interval=10.0,
                                max_addresses=4, seed=6)
        events = process.events_between(0, 10_000)
        assert events
        assert len(events[-1].addresses) == 4
        sizes = [len(e.addresses) for e in events]
        assert sizes == sorted(sizes)

    def test_supersets_only(self):
        process = AddressGrowth(["1.1.1.1"], 10.0, 5, seed=7)
        previous = set(process.initial_addresses())
        for event in process.events_between(0, 10_000):
            current = set(event.addresses)
            assert current > previous
            previous = current

    def test_all_logical(self):
        process = AddressGrowth(["1.1.1.1"], 10.0, 3, seed=8)
        assert all(e.cause == CAUSE_GROWTH and not e.is_physical
                   for e in process.events_between(0, 1000))

    def test_ceiling_validation(self):
        with pytest.raises(ValueError):
            AddressGrowth(["1.1.1.1", "2.2.2.2"], 10.0, 1, seed=1)


class TestAddressRotation:
    def test_rotates_within_pool(self):
        pool = ["1.1.1.1", "2.2.2.2", "3.3.3.3"]
        process = AddressRotation(pool, period=20.0, change_probability=1.0,
                                  seed=9)
        events = process.events_between(0, 1000)
        assert events
        for event in events:
            assert set(event.addresses) <= set(pool)

    def test_change_probability_one_changes_every_period(self):
        process = AddressRotation(["1.1.1.1", "2.2.2.2"], period=10.0,
                                  change_probability=1.0, seed=10)
        events = process.events_between(0, 100)
        assert len(events) == 10

    def test_akamai_like_low_change_probability(self):
        """§3.2: Akamai domains change ≈10 % of probes at 20 s TTL."""
        pool = [f"10.0.0.{i}" for i in range(1, 9)]
        process = AddressRotation(pool, period=20.0,
                                  change_probability=0.10, seed=11)
        events = process.events_between(0, 20.0 * 10_000)
        assert len(events) / 10_000 == pytest.approx(0.10, rel=0.15)

    def test_addresses_at_consistent_with_events(self):
        process = AddressRotation(["1.1.1.1", "2.2.2.2", "3.3.3.3"],
                                  period=10.0, change_probability=0.5,
                                  seed=12)
        events = process.events_between(0, 500)
        for event in events:
            assert process.addresses_at(event.time) == event.addresses

    def test_pool_too_small(self):
        with pytest.raises(ValueError):
            AddressRotation(["1.1.1.1"], 10.0, 1.0, seed=1)


class TestComposite:
    def test_merges_sorted(self):
        relocation = PoissonRelocation(["1.1.1.1"], 100.0, seed=13)
        rotation = AddressRotation(["2.2.2.2", "3.3.3.3"], period=30.0,
                                   change_probability=1.0, seed=14)
        composite = CompositeProcess([relocation, rotation])
        events = composite.events_between(0, 1000)
        times = [e.time for e in events]
        assert times == sorted(times)
        causes = {e.cause for e in events}
        assert CAUSE_ROTATION in causes

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeProcess([])


class TestRandomIpv4:
    def test_valid_octets(self):
        import random
        rng = random.Random(0)
        for _ in range(100):
            parts = [int(p) for p in random_ipv4(rng).split(".")]
            assert len(parts) == 4
            assert all(1 <= p <= 254 for p in parts)
