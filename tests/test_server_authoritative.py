"""Tests for the authoritative server over the wire."""

import pytest

from repro.dnslib import (
    A,
    Message,
    Name,
    Opcode,
    Rcode,
    ResourceRecord,
    RRType,
    make_query,
    make_update,
)
from repro.server import AuthoritativeServer
from repro.zone import load_zone, update_add, update_delete_rrset, ZoneSlave, zones_equal
from tests.conftest import EXAMPLE_ZONE_TEXT


@pytest.fixture
def setup(make_host, simulator):
    server_host = make_host("10.0.0.1")
    client_host = make_host("10.0.0.9")
    zone = load_zone(EXAMPLE_ZONE_TEXT)
    server = AuthoritativeServer(server_host, [zone])
    client = client_host.socket()

    def ask(message: Message) -> Message:
        responses = []
        client.request(message.to_wire(), ("10.0.0.1", 53), message.id,
                       lambda p, s: responses.append(p))
        simulator.run()
        assert responses and responses[0] is not None
        return Message.from_wire(responses[0])

    return server, zone, ask


class TestQueries:
    def test_positive_answer_authoritative(self, setup):
        _, _, ask = setup
        response = ask(make_query("www.example.com", RRType.A))
        assert response.rcode == Rcode.NOERROR
        assert response.authoritative
        assert {r.rdata.address for r in response.answer} == \
            {"10.0.0.10", "10.0.0.11"}

    def test_nxdomain_carries_soa(self, setup):
        _, _, ask = setup
        response = ask(make_query("missing.example.com", RRType.A))
        assert response.rcode == Rcode.NXDOMAIN
        assert any(r.rrtype == RRType.SOA for r in response.authority)

    def test_nodata_noerror_with_soa(self, setup):
        _, _, ask = setup
        response = ask(make_query("www.example.com", RRType.MX))
        assert response.rcode == Rcode.NOERROR
        assert not response.answer
        assert any(r.rrtype == RRType.SOA for r in response.authority)

    def test_cname_followed_within_zone(self, setup):
        _, _, ask = setup
        response = ask(make_query("ftp.example.com", RRType.A))
        types = [r.rrtype for r in response.answer]
        assert RRType.CNAME in types and RRType.A in types

    def test_referral_for_delegated_subzone(self, setup):
        _, _, ask = setup
        response = ask(make_query("host.sub.example.com", RRType.A))
        assert not response.authoritative
        assert not response.answer
        ns = [r for r in response.authority if r.rrtype == RRType.NS]
        assert ns and ns[0].name == Name.from_text("sub.example.com")
        glue = [r for r in response.additional if r.rrtype == RRType.A]
        assert glue and glue[0].rdata.address == "10.0.1.1"

    def test_out_of_zone_refused(self, setup):
        _, _, ask = setup
        response = ask(make_query("www.other.org", RRType.A))
        assert response.rcode == Rcode.REFUSED

    def test_multi_question_formerr(self, setup):
        _, _, ask = setup
        query = make_query("www.example.com", RRType.A)
        query.question.append(query.question[0])
        assert ask(query).rcode == Rcode.FORMERR

    def test_unknown_opcode_notimp(self, setup):
        _, _, ask = setup
        query = make_query("www.example.com", RRType.A)
        query.opcode = Opcode.STATUS
        assert ask(query).rcode == Rcode.NOTIMP

    def test_malformed_datagram_ignored(self, setup, make_host, simulator):
        server, _, _ = setup
        rogue = make_host("10.0.0.7").socket()
        rogue.send(b"\x01", ("10.0.0.1", 53))
        simulator.run()
        assert server.stats.malformed == 1

    def test_stats_counters(self, setup):
        server, _, ask = setup
        ask(make_query("www.example.com", RRType.A))
        ask(make_query("missing.example.com", RRType.A))
        assert server.stats.queries == 2
        assert server.stats.answers == 1
        assert server.stats.nxdomains == 1


class TestQueryHooks:
    def test_hook_sees_query_and_response(self, setup):
        server, _, ask = setup
        seen = []
        server.query_hooks.append(lambda q, src, r: seen.append((q, src, r)))
        ask(make_query("www.example.com", RRType.A, rrc=7))
        assert len(seen) == 1
        query, src, response = seen[0]
        assert query.question[0].rrc == 7
        assert response.answer

    def test_hook_can_grant_lease(self, setup):
        server, _, ask = setup

        def grant(query, src, response):
            if query.cache_update_aware:
                response.llt = 123

        server.query_hooks.append(grant)
        response = ask(make_query("www.example.com", RRType.A, rrc=1))
        assert response.llt == 123


class TestUpdatesOverWire:
    def test_update_applies(self, setup):
        _, zone, ask = setup
        message = make_update("example.com")
        message.update.append(update_delete_rrset("www.example.com", RRType.A))
        message.update.append(update_add(
            ResourceRecord("www.example.com", RRType.A, 60, A("9.9.9.9"))))
        response = ask(message)
        assert response.rcode == Rcode.NOERROR
        assert zone.get_rrset("www.example.com", RRType.A).rdatas == (A("9.9.9.9"),)

    def test_update_refused_when_disabled(self, setup):
        server, _, ask = setup
        server.allow_updates = False
        response = ask(make_update("example.com"))
        assert response.rcode == Rcode.REFUSED

    def test_update_for_unknown_zone_notauth(self, setup):
        _, _, ask = setup
        assert ask(make_update("other.org")).rcode == Rcode.NOTAUTH


class TestNotifyFanout:
    def test_slave_notified_and_refreshes(self, make_host, simulator):
        master_host = make_host("10.0.1.1")
        slave_host = make_host("10.0.1.2")
        master_zone = load_zone(EXAMPLE_ZONE_TEXT)
        master_server = AuthoritativeServer(master_host, [master_zone])
        slave_zone = load_zone(EXAMPLE_ZONE_TEXT)
        slave_server = AuthoritativeServer(slave_host)
        slave_server.add_zone(slave_zone, master=False)
        replica = ZoneSlave(slave_zone)
        master_server.register_slave(master_zone.origin, ("10.0.1.2", 53),
                                     replica)
        slave_server.set_notify_refresher(
            lambda origin: replica.refresh_from(
                master_server.master_for(origin)))
        master_zone.replace_address("www.example.com", ["172.16.1.1"])
        simulator.run()
        assert master_server.stats.notifies_sent == 1
        assert zones_equal(master_zone, slave_zone, ignore_soa=False)
