"""Tests for the trace-auditing layer: spans, invariants, reports.

The negative tests are the heart: each takes a *clean* protocol trace,
tampers with it the way a specific bug would (drop an ack, inflate an
rtt, over-grant leases, ...), and asserts the auditor reports exactly
the violation kind that bug produces.
"""

import pytest

from repro.core import DNScupConfig, DynamicLeasePolicy, attach_dnscup
from repro.dnslib import Name, RRType
from repro.net import Host, Network, Simulator
from repro.obs import (
    BUDGET_RENEWAL,
    BUDGET_STORAGE,
    CAUSALITY,
    COMPLETENESS,
    STALENESS,
    TERMINATION,
    VIOLATION_KINDS,
    WIRE,
    AuditLimits,
    Histogram,
    Observability,
    audit_observability,
    audit_trace,
    build_spans,
    domain_timelines,
    histogram_percentile,
    percentiles,
    render_report,
)
from repro.server import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.sim.driver import fixed_lease_fn, simulate_lease_trace
from repro.obs.trace import TraceBus
from repro.traces.workload import QueryEvent
from repro.zone import load_zone

NAME = "www.example.com."
CACHE_A = "10.0.0.2:53"
CACHE_B = "10.0.0.3:53"


def clean_trace():
    """A hand-built, invariant-clean run: two lease holders, one change
    fanned out to both (one leg retransmitted once), both acked, settled.

    RTTs and the settled window are computed from the same float
    subtractions the auditor recomputes, so the trace audits at zero
    slack — exactly like a live emitter's trace.
    """
    detected = 10.0
    ack_a, ack_b = 10.2, 10.5
    return [
        (0.0, "lease.grant", {"cache": CACHE_A, "name": NAME,
                              "rrtype": "A", "length": 600.0}),
        (1.0, "lease.grant", {"cache": CACHE_B, "name": NAME,
                              "rrtype": "A", "length": 600.0}),
        (detected, "change.detected", {"seq": 1, "zone": "example.com.",
                                       "name": NAME, "rrtype": "A",
                                       "kind": "update"}),
        (detected, "notify.send", {"seq": 1, "cache": CACHE_A, "name": NAME,
                                   "rrtype": "A", "id": 101}),
        (detected, "notify.send", {"seq": 1, "cache": CACHE_B, "name": NAME,
                                   "rrtype": "A", "id": 102}),
        (10.1, "notify.retransmit", {"seq": 1, "cache": CACHE_B,
                                     "name": NAME, "rrtype": "A",
                                     "id": 102, "attempt": 2}),
        (ack_a, "notify.ack", {"seq": 1, "cache": CACHE_A, "name": NAME,
                               "rrtype": "A", "rtt": ack_a - detected}),
        (ack_b, "notify.ack", {"seq": 1, "cache": CACHE_B, "name": NAME,
                               "rrtype": "A", "rtt": ack_b - detected}),
        (ack_b, "change.settled", {"seq": 1, "window": ack_b - detected,
                                   "acked": 2, "failed": 0}),
    ]


def capture_for(events):
    """A wire capture consistent with ``events``: one delivered
    CACHE-UPDATE datagram per notify.send / notify.retransmit."""
    records = []
    for t, name, fields in events:
        if name not in ("notify.send", "notify.retransmit"):
            continue
        records.append({"t": t, "proto": "udp", "src": "10.0.0.1:53",
                        "dst": fields["cache"], "size": 64,
                        "id": fields["id"], "opcode": "CACHE-UPDATE",
                        "qr": False, "fate": "delivered"})
    return records


def drop(events, name, nth=0):
    """``events`` minus the nth occurrence of event ``name``."""
    out, seen = [], 0
    for event in events:
        if event[1] == name:
            if seen == nth:
                seen += 1
                continue
            seen += 1
        out.append(event)
    return out


class TestSpans:
    def test_clean_trace_reconstructs_fully(self):
        spans = build_spans(clean_trace())
        assert spans.orphans == []
        assert spans.untracked == []
        assert len(spans.leases) == 2
        assert all(lease.open for lease in spans.leases)
        [change] = spans.changes
        assert change.seq == 1 and change.settled
        assert change.name == NAME and change.kind == "update"
        assert len(change.legs) == 2
        assert len(change.acked_legs()) == 2
        assert change.window() == 10.5 - 10.0
        assert change.window() == change.settled_window
        leg_b = next(l for l in change.legs if l.cache == CACHE_B)
        assert leg_b.attempts == 2  # the retransmit attached to its leg
        assert leg_b.rtt == 10.5 - 10.0

    def test_lease_lifecycle_renew_expire_supersede(self):
        events = [
            (0.0, "lease.grant", {"cache": CACHE_A, "name": NAME,
                                  "rrtype": "A", "length": 10.0}),
            (5.0, "lease.renew", {"cache": CACHE_A, "name": NAME,
                                  "rrtype": "A", "length": 10.0}),
            (15.0, "lease.expire", {"cache": CACHE_A, "name": NAME,
                                    "rrtype": "A"}),
            (20.0, "lease.grant", {"cache": CACHE_A, "name": NAME,
                                   "rrtype": "A", "length": 10.0}),
            # A second grant with no intervening expire: supersedes.
            (25.0, "lease.grant", {"cache": CACHE_A, "name": NAME,
                                   "rrtype": "A", "length": 10.0}),
        ]
        spans = build_spans(events)
        assert spans.orphans == []
        first, second, third = spans.leases
        assert first.end_kind == "expire"
        # The renewal restarted the term: live at t=12 (event index 2).
        assert first.covers(12.0, 2)
        assert not first.covers(16.0, 3)
        assert second.end_kind == "superseded"
        assert third.open

    def test_orphans_surface(self):
        events = [
            (1.0, "notify.ack", {"seq": 7, "cache": CACHE_A, "rtt": 0.1}),
            (2.0, "lease.expire", {"cache": CACHE_A, "name": NAME,
                                   "rrtype": "A"}),
        ]
        spans = build_spans(events)
        assert len(spans.orphans) == 2
        reasons = [reason for _index, reason in spans.orphans]
        assert "ack without outstanding send" in reasons[0]
        assert "without a live lease" in reasons[1]

    def test_untracked_seq0_legs_match_fifo(self):
        events = [
            (0.0, "notify.send", {"seq": 0, "cache": CACHE_A, "name": NAME,
                                  "rrtype": "A", "id": 1}),
            (0.0, "notify.send", {"seq": 0, "cache": CACHE_A, "name": NAME,
                                  "rrtype": "A", "id": 2}),
            (0.3, "notify.ack", {"seq": 0, "cache": CACHE_A, "name": NAME,
                                 "rrtype": "A", "rtt": 0.3}),
        ]
        spans = build_spans(events)
        assert spans.changes == []
        assert len(spans.untracked) == 2
        assert spans.untracked[0].acked          # oldest send acked first
        assert not spans.untracked[1].resolved


class TestAuditCleanRuns:
    def test_clean_trace_zero_violations(self):
        events = clean_trace()
        report = audit_trace(events, capture=capture_for(events),
                            limits=AuditLimits(storage_budget=2,
                                               renewal_budget=10.0,
                                               max_staleness=1.0))
        assert report.ok, report.as_dict()
        # Every family actually examined something.
        assert set(report.checks) == {COMPLETENESS, TERMINATION, CAUSALITY,
                                      STALENESS, BUDGET_STORAGE, WIRE}
        assert report.events_audited == len(events)
        assert report.capture_audited == 3

    def test_live_middleware_run_audits_clean(self, simulator):
        network = Network(simulator, seed=2)
        obs = Observability.for_simulator(simulator, capture=True)
        obs.observe_network(network)
        zone = load_zone("""\
$ORIGIN example.com.
$TTL 300
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.0.0.1
www  IN A   10.0.0.10
""")
        auth = AuthoritativeServer(Host(network, "10.0.0.1"), [zone])
        attach_dnscup(auth, policy=DynamicLeasePolicy(0.0),
                      config=DNScupConfig(observability=obs))
        resolver = RecursiveResolver(Host(network, "10.0.0.2"),
                                     [("10.0.0.1", 53)], dnscup_enabled=True)
        client = StubResolver(Host(network, "10.0.0.3"), ("10.0.0.2", 53),
                              cache_seconds=0.0)
        client.lookup("www.example.com", lambda addrs, rc: None)
        simulator.run()
        zone.replace_address("www.example.com", ["10.0.0.99"])
        simulator.run()
        report = audit_observability(obs, AuditLimits(storage_budget=10))
        assert report.ok, report.as_dict()
        assert report.spans.change_for(1) is not None
        assert len(report.spans.change_for(1).acked_legs()) == 1

    def test_audit_refuses_overflowed_trace(self):
        obs = Observability(trace=TraceBus(capacity=1), registry=None)
        obs.trace.emit("net.drop", t=0.0)
        obs.trace.emit("net.drop", t=1.0)
        with pytest.raises(ValueError, match="incomplete"):
            audit_observability(obs)

    def test_driver_reference_oracle_emits_auditable_leases(self):
        name = Name.from_text("www.example.com")
        events = [QueryEvent(time=float(i * 40), client=0, name=name,
                             nameserver=0) for i in range(5)]
        trace = TraceBus()
        traced = simulate_lease_trace(
            events, {}, lambda _n: 1e6, fixed_lease_fn(60.0), 200.0,
            trace=trace)
        plain = simulate_lease_trace(
            events, {}, lambda _n: 1e6, fixed_lease_fn(60.0), 200.0)
        # The trace hook never perturbs the measurement.
        assert traced == plain
        counts = trace.counts()
        # Queries at 0/40/80... with 60 s leases: grant, absorb, expire+
        # grant, ... -> 3 grants, 2 lazily observed expiries.
        assert counts == {"lease.grant": 3, "lease.expire": 2}
        report = audit_trace(list(trace),
                             limits=AuditLimits(storage_budget=1))
        assert report.ok, report.as_dict()


class TestAuditTampers:
    """Each seeded trace defect must produce its own violation kind."""

    def test_dropped_ack_is_termination(self):
        # Drop the *earlier* ack (CACHE_A): its leg never resolves and
        # the settle event's acked count no longer matches the tree.
        events = drop(clean_trace(), "notify.ack", nth=0)
        report = audit_trace(events)
        assert not report.ok
        assert report.kinds() == {TERMINATION}
        messages = " | ".join(v.message for v in report.violations)
        assert "never resolved" in messages
        assert "claims acked=2" in messages

    def test_inflated_rtt_is_causality(self):
        events = clean_trace()
        tampered = [(t, n, dict(f, rtt=0.9) if n == "notify.ack" else f)
                    for t, n, f in events]
        report = audit_trace(tampered)
        assert not report.ok
        assert report.kinds() == {CAUSALITY}
        assert all("rtt" in v.message for v in report.violations)

    def test_ack_before_send_is_causality(self):
        # Reorder: move CACHE_A's ack before any send — the positional
        # matcher finds no outstanding leg, evidence of a reordered or
        # forged record.
        events = clean_trace()
        ack = next(e for e in events if e[1] == "notify.ack")
        events.remove(ack)
        events.insert(2, (9.0, ack[1], ack[2]))
        report = audit_trace(events)
        assert not report.ok
        assert CAUSALITY in report.kinds()
        assert any("ack without outstanding send" in v.message
                   for v in report.violations)

    def test_unnotified_holder_is_completeness(self):
        events = drop(clean_trace(), "notify.send", nth=0)  # CACHE_A's
        report = audit_trace(events)
        assert not report.ok
        assert COMPLETENESS in report.kinds()
        assert any(CACHE_A in v.message and v.kind == COMPLETENESS
                   for v in report.violations)

    def test_overgranted_leases_is_budget_storage(self):
        report = audit_trace(clean_trace(),
                             limits=AuditLimits(storage_budget=1))
        assert not report.ok
        assert report.kinds() == {BUDGET_STORAGE}

    def test_renewal_flood_is_budget_renewal(self):
        events = [(0.0, "lease.grant", {"cache": CACHE_A, "name": NAME,
                                        "rrtype": "A", "length": 600.0})]
        events += [(0.1 * i, "lease.renew",
                    {"cache": CACHE_A, "name": NAME, "rrtype": "A",
                     "length": 600.0}) for i in range(1, 11)]
        report = audit_trace(events, limits=AuditLimits(
            renewal_budget=2.0, renewal_window=1.0))
        assert not report.ok
        assert report.kinds() == {BUDGET_RENEWAL}

    def test_tampered_settled_window_is_staleness(self):
        events = [(t, n, dict(f, window=0.123) if n == "change.settled"
                   else f) for t, n, f in clean_trace()]
        report = audit_trace(events)
        assert not report.ok
        assert report.kinds() == {STALENESS}

    def test_stale_holder_beyond_bound_is_staleness(self):
        report = audit_trace(clean_trace(),
                             limits=AuditLimits(max_staleness=0.3))
        assert not report.ok
        assert report.kinds() == {STALENESS}
        # Only CACHE_B (acked 0.5 s after detection) breaches 0.3 s.
        assert all(CACHE_B in v.message for v in report.violations)

    def test_forged_capture_id_is_wire(self):
        events = clean_trace()
        capture = capture_for(events)
        for record in capture:
            if record["dst"] == CACHE_A:
                record["id"] = 999  # trace says 101 went out
        report = audit_trace(events, capture=capture)
        assert not report.ok
        assert report.kinds() == {WIRE}
        assert any("no captured datagram" in v.message
                   for v in report.violations)

    def test_ack_without_delivery_is_wire(self):
        events = clean_trace()
        capture = capture_for(events)
        for record in capture:
            if record["dst"] == CACHE_B:
                record["fate"] = "dropped"
        report = audit_trace(events, capture=capture)
        assert not report.ok
        assert report.kinds() == {WIRE}
        assert any("no captured datagram was" in v.message
                   for v in report.violations)

    def test_all_kinds_are_contract_kinds(self):
        # Every kind the tampers above produced is in the contract set.
        assert {TERMINATION, CAUSALITY, COMPLETENESS, BUDGET_STORAGE,
                BUDGET_RENEWAL, STALENESS, WIRE} <= VIOLATION_KINDS


class TestReport:
    def test_percentile_interpolation(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.6, 1.9):
            hist.observe(value)
        assert histogram_percentile(hist, 0.0) == 0.5       # clamps to min
        assert histogram_percentile(hist, 50.0) == pytest.approx(4 / 3)
        assert histogram_percentile(hist, 100.0) == 1.9     # clamps to max
        assert histogram_percentile(Histogram("e"), 50.0) is None

    def test_percentile_overflow_bucket_uses_observed_max(self):
        hist = Histogram("h", buckets=(1.0,))
        for value in (5.0, 7.0):
            hist.observe(value)  # both beyond the last bound
        p99 = histogram_percentile(hist, 99.0)
        assert p99 is not None and p99 <= 7.0

    def test_percentiles_accepts_snapshot_dict(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.5):
            hist.observe(value)
        live = percentiles(hist)
        from_snapshot = percentiles(hist.as_dict())
        assert live == from_snapshot
        assert set(live) == {"p50", "p95", "p99"}

    def test_domain_timelines_group_by_name(self):
        spans = build_spans(clean_trace())
        timelines = domain_timelines(spans)
        assert list(timelines) == [NAME]
        assert timelines[NAME][0].seq == 1

    def test_render_report_clean_run(self):
        events = clean_trace()
        text = render_report(events, capture=capture_for(events),
                             title="Audit quickstart")
        assert text.startswith("# Audit quickstart")
        assert "**0 violations**" in text
        assert NAME in text
        assert "p95" in text

    def test_render_report_shows_violations(self):
        text = render_report(drop(clean_trace(), "notify.ack", nth=0))
        assert "termination" in text
        assert "never resolved" in text
