"""Tests for the §4.1 analytical lease model."""

import math

import pytest

from repro.core import (
    fixed_lease_curve,
    lease_probability,
    message_rate_reduction,
    operating_point,
    probability_increase,
    renewal_rate,
    tradeoff_ratio,
)


class TestLeaseProbability:
    def test_formula(self):
        # λ=0.1 (one query per 10 s), t=10: P = 10/(10+10) = 0.5
        assert lease_probability(10.0, 0.1) == pytest.approx(0.5)

    def test_zero_lease_zero_probability(self):
        assert lease_probability(0.0, 1.0) == 0.0

    def test_zero_rate_zero_probability(self):
        assert lease_probability(100.0, 0.0) == 0.0

    def test_monotone_in_lease_length(self):
        rate = 0.05
        values = [lease_probability(t, rate) for t in (1, 10, 100, 1000)]
        assert values == sorted(values)

    def test_bounded_by_one(self):
        assert lease_probability(1e12, 100.0) < 1.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            lease_probability(-1.0, 1.0)
        with pytest.raises(ValueError):
            lease_probability(1.0, -1.0)


class TestRenewalRate:
    def test_formula(self):
        # λ=0.1, t=10: M = 1/(10+10) = 0.05
        assert renewal_rate(10.0, 0.1) == pytest.approx(0.05)

    def test_zero_lease_degenerates_to_polling(self):
        """Paper: no lease → the full query rate goes upstream."""
        assert renewal_rate(0.0, 0.25) == pytest.approx(0.25)

    def test_monotone_decreasing_in_lease_length(self):
        rate = 0.05
        values = [renewal_rate(t, rate) for t in (0, 1, 10, 100)]
        assert values == sorted(values, reverse=True)

    def test_zero_rate_zero_messages(self):
        assert renewal_rate(100.0, 0.0) == 0.0


class TestTradeoffRatio:
    """The paper's key identity: ΔM/ΔP = λ, for any t1 < t2."""

    @pytest.mark.parametrize("rate", [0.001, 0.1, 1.0, 50.0])
    @pytest.mark.parametrize("t1,t2", [(0.0, 10.0), (5.0, 500.0),
                                       (100.0, 101.0)])
    def test_ratio_equals_lambda(self, rate, t1, t2):
        assert tradeoff_ratio(t1, t2, rate) == pytest.approx(rate, rel=1e-9)

    def test_consistency_of_deltas(self):
        dp = probability_increase(10.0, 20.0, 0.5)
        dm = message_rate_reduction(10.0, 20.0, 0.5)
        assert dm == pytest.approx(0.5 * dp)

    def test_degenerate_change_rejected(self):
        with pytest.raises(ValueError):
            tradeoff_ratio(10.0, 10.0, 1.0)


class TestOperatingPoint:
    def test_no_lease_extreme(self):
        """Paper's polling extreme: storage 0 %, query rate 100 %."""
        point = operating_point([(0.1, 0.0), (0.5, 0.0)])
        assert point.storage_percentage == 0.0
        assert point.query_rate_percentage == 100.0

    def test_infinite_lease_limit(self):
        point = operating_point([(0.1, 1e12), (0.5, 1e12)])
        assert point.storage_percentage == pytest.approx(100.0, abs=0.01)
        assert point.query_rate_percentage < 0.01

    def test_mixed_assignment(self):
        point = operating_point([(0.1, 10.0), (0.1, 0.0)])
        # one pair at P=0.5, one at 0 → 25% storage
        assert point.storage_percentage == pytest.approx(25.0)
        # messages: 0.05 + 0.1 of max 0.2 → 75%
        assert point.query_rate_percentage == pytest.approx(75.0)

    def test_empty(self):
        point = operating_point([])
        assert point.storage_percentage == 0.0
        assert point.query_rate_percentage == 0.0


class TestFixedLeaseCurve:
    def test_curve_monotone(self):
        rates = [0.01, 0.05, 0.2, 1.0]
        curve = fixed_lease_curve(rates, [0, 1, 10, 100, 1000])
        storages = [s for _, s, _ in curve]
        query_rates = [q for _, _, q in curve]
        assert storages == sorted(storages)
        assert query_rates == sorted(query_rates, reverse=True)

    def test_endpoints(self):
        curve = fixed_lease_curve([0.1], [0, 1e12])
        assert curve[0][1] == 0.0 and curve[0][2] == 100.0
        assert curve[-1][1] == pytest.approx(100.0, abs=0.01)
