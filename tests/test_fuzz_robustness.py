"""Fuzz-style robustness tests: decoders never crash unexpectedly.

Servers parse datagrams from anyone on the network; every parser must
fail *closed* — raising only the documented error types — for arbitrary
and mutated input.  Hypothesis drives random bytes, truncations, and
single-byte corruptions of valid messages through every decode path.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dnslib import (
    A,
    Message,
    Name,
    ResourceRecord,
    RRType,
    TsigError,
    WireFormatError,
    WireReader,
    make_cache_update,
    make_query,
    make_response,
    split_signed,
)
from repro.zone import MasterFileError, parse_records

ACCEPTABLE = (WireFormatError, ValueError)  # ValueError covers enum casts


def valid_messages():
    query = make_query("www.example.com", RRType.A, rrc=7)
    response = make_response(query, llt=300)
    response.answer.append(
        ResourceRecord("www.example.com", RRType.A, 60, A("1.2.3.4")))
    response.edns_payload_size = 4096
    update = make_cache_update(
        "www.example.com",
        [ResourceRecord("www.example.com", RRType.A, 60, A("9.9.9.9"))])
    return [query.to_wire(), response.to_wire(), update.to_wire()]


VALID_WIRES = valid_messages()


class TestMessageDecoderRobustness:
    @given(st.binary(min_size=0, max_size=200))
    @settings(max_examples=300, deadline=None)
    def test_random_bytes_fail_closed(self, data):
        try:
            Message.from_wire(data)
        except ACCEPTABLE:
            pass

    @given(st.sampled_from(VALID_WIRES), st.integers(0, 10_000))
    @settings(max_examples=300, deadline=None)
    def test_truncations_fail_closed(self, wire, cut):
        data = wire[:cut % (len(wire) + 1)]
        try:
            Message.from_wire(data)
        except ACCEPTABLE:
            pass

    @given(st.sampled_from(VALID_WIRES), st.integers(0, 10_000),
           st.integers(1, 255))
    @settings(max_examples=500, deadline=None)
    def test_bitflips_fail_closed_or_decode(self, wire, position, flip):
        mutated = bytearray(wire)
        mutated[position % len(mutated)] ^= flip
        try:
            Message.from_wire(bytes(mutated))
        except ACCEPTABLE:
            pass

    @given(st.sampled_from(VALID_WIRES))
    @settings(max_examples=30, deadline=None)
    def test_valid_wires_always_decode(self, wire):
        message = Message.from_wire(wire)
        # And re-encode stably.
        assert Message.from_wire(message.to_wire()).id == message.id


class TestNameDecoderRobustness:
    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=300, deadline=None)
    def test_random_name_bytes_fail_closed(self, data):
        try:
            WireReader(data).read_name()
        except ACCEPTABLE:
            pass

    @given(st.binary(min_size=2, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_pointer_storms_terminate(self, data):
        """Crafted pointer chains must terminate (no infinite loops)."""
        # Prefix with a pointer into the attacker-controlled region.
        crafted = b"\xc0\x02" + data
        try:
            WireReader(crafted).read_name()
        except ACCEPTABLE:
            pass


class TestTsigSplitRobustness:
    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=300, deadline=None)
    def test_split_signed_fails_closed(self, data):
        try:
            split_signed(data)
        except (TsigError, *ACCEPTABLE):
            pass

    @given(st.binary(min_size=0, max_size=100))
    @settings(max_examples=200, deadline=None)
    def test_magic_plus_garbage(self, garbage):
        try:
            split_signed(b"some message" + b"TSIG2845" + garbage)
        except (TsigError, *ACCEPTABLE):
            pass


class TestMasterFileRobustness:
    @given(st.text(max_size=400))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text_fails_closed(self, text):
        try:
            parse_records(text, origin=Name.from_text("x.com"),
                          default_ttl=60)
        except (MasterFileError, ValueError):
            pass


class TestServerNeverCrashesOnGarbage:
    @given(st.binary(min_size=0, max_size=128))
    @settings(max_examples=150, deadline=None)
    def test_authoritative_server_survives_garbage(self, data):
        from repro.net import Host, Network, Simulator
        from repro.server import AuthoritativeServer
        from repro.zone import load_zone
        simulator = Simulator()
        network = Network(simulator, seed=0)
        server = AuthoritativeServer(
            Host(network, "10.0.0.1"),
            [load_zone("$ORIGIN x.com.\n$TTL 60\n"
                       "@ IN SOA ns admin 1 2 3 4 5\n@ IN NS ns\n"
                       "ns IN A 10.0.0.1\n")])
        server._handle_datagram(data, ("10.0.0.9", 1234), ("10.0.0.1", 53))
        server._handle_stream(data, ("10.0.0.9", 1234), ("10.0.0.1", 53))
        simulator.run()
