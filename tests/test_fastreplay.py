"""The pair-indexed fast replay engine against the reference oracle.

The contract under test is *bit identity*: for any trace, any trained
rates and any scheme, :mod:`repro.sim.fastreplay` must return the exact
:class:`~repro.sim.metrics.LeaseSimResult` (every field, including the
float ``lease_seconds``) that :func:`~repro.sim.driver.simulate_lease_trace`
produces by brute-force replay.
"""

import dataclasses
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dnslib import Name
from repro.sim import (
    ExactSum,
    PairIndex,
    dynamic_lease_fn,
    fast_dynamic_sweep,
    fast_lease_replay,
    fast_polling,
    figure5_curves,
    fixed_lease_fn,
    no_lease_fn,
    simulate_lease_trace,
)
from repro.traces import DomainSpec, StableProcess
from repro.traces.workload import QueryEvent, measured_rates

NAMES = [Name.from_text(f"host{i}.example.com") for i in range(6)]

DURATION = 1000.0


def _assert_identical(reference, fast):
    """Field-for-field comparison with a readable diff on failure."""
    assert dataclasses.astuple(reference) == dataclasses.astuple(fast), \
        f"\nreference: {reference}\nfast:      {fast}"


def make_max_lease_of(spread):
    """A deterministic per-name max lease with some variety."""
    def max_lease_of(name):
        return spread * (1 + len(name.labels[0]) % 3)
    return max_lease_of


# -- strategies ----------------------------------------------------------------

events_strategy = st.lists(
    st.builds(
        QueryEvent,
        time=st.floats(min_value=0.0, max_value=DURATION * 1.2,
                       allow_nan=False, allow_infinity=False),
        client=st.integers(0, 4),
        name=st.sampled_from(NAMES),
        nameserver=st.integers(0, 2)),
    min_size=0, max_size=200)

lengths_strategy = st.floats(min_value=0.001, max_value=DURATION * 2,
                             allow_nan=False, allow_infinity=False)


def trained(events):
    return measured_rates(events, DURATION, by="name-nameserver") \
        if events else {}


# -- the property: bit-identical to the oracle ---------------------------------


class TestReplayEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(events=events_strategy, length=lengths_strategy,
           spread=st.floats(min_value=0.5, max_value=500.0))
    def test_fixed_scheme_identical(self, events, length, spread):
        events = sorted(events, key=lambda e: e.time)
        rates = trained(events)
        max_lease_of = make_max_lease_of(spread)
        reference = simulate_lease_trace(
            events, rates, max_lease_of, fixed_lease_fn(length), DURATION,
            scheme="fixed", parameter=length)
        fast = fast_lease_replay(
            events, rates, max_lease_of, fixed_lease_fn(length), DURATION,
            scheme="fixed", parameter=length)
        _assert_identical(reference, fast)

    @settings(max_examples=80, deadline=None)
    @given(events=events_strategy, spread=st.floats(min_value=0.5,
                                                    max_value=500.0),
           thresholds=st.lists(st.floats(min_value=0.0, max_value=1.0),
                               min_size=1, max_size=8))
    def test_dynamic_sweep_identical(self, events, spread, thresholds):
        events = sorted(events, key=lambda e: e.time)
        rates = trained(events)
        max_lease_of = make_max_lease_of(spread)
        reference = [
            simulate_lease_trace(events, rates, max_lease_of,
                                 dynamic_lease_fn(threshold), DURATION,
                                 scheme="dynamic", parameter=threshold)
            for threshold in thresholds]
        fast = fast_dynamic_sweep(events, rates, max_lease_of, thresholds,
                                  DURATION)
        assert len(reference) == len(fast)
        for ref, fst in zip(reference, fast):
            _assert_identical(ref, fst)

    @settings(max_examples=60, deadline=None)
    @given(events=events_strategy)
    def test_polling_identical(self, events):
        rates = trained(events)
        reference = simulate_lease_trace(
            events, rates, lambda name: 100.0, no_lease_fn(), DURATION,
            scheme="none")
        _assert_identical(reference, fast_polling(events, DURATION))

    @settings(max_examples=60, deadline=None)
    @given(events=events_strategy, length=lengths_strategy,
           seed=st.integers(0, 2**16))
    def test_unsorted_trace_identical(self, events, length, seed):
        """The oracle replays events in *input* order; so must the fast
        engine, even when that order is not time-sorted."""
        random.Random(seed).shuffle(events)
        rates = trained(events)
        max_lease_of = make_max_lease_of(10.0)
        reference = simulate_lease_trace(
            events, rates, max_lease_of, fixed_lease_fn(length), DURATION,
            scheme="fixed", parameter=length)
        fast = fast_lease_replay(
            events, rates, max_lease_of, fixed_lease_fn(length), DURATION,
            scheme="fixed", parameter=length)
        _assert_identical(reference, fast)


# -- edge cases ----------------------------------------------------------------


class TestEdgeCases:
    def test_lease_truncated_at_duration(self):
        """A lease granted near the end only counts coverage up to
        ``duration``, in both engines."""
        events = [QueryEvent(995.0, 0, NAMES[0], 0)]
        for engine_result in (
                simulate_lease_trace(events, {}, lambda n: 1e9,
                                     fixed_lease_fn(50.0), DURATION,
                                     scheme="fixed", parameter=50.0),
                fast_lease_replay(events, {}, lambda n: 1e9,
                                  fixed_lease_fn(50.0), DURATION,
                                  scheme="fixed", parameter=50.0)):
            assert engine_result.grants == 1
            assert engine_result.lease_seconds == 5.0

    def test_grant_after_duration_counts_zero_coverage(self):
        """The oracle clamps coverage to zero for grants past the end of
        the measured window; the fast engine must do the same."""
        events = [QueryEvent(1005.0, 0, NAMES[0], 0)]
        reference = simulate_lease_trace(
            events, {}, lambda n: 1e9, fixed_lease_fn(50.0), DURATION,
            scheme="fixed", parameter=50.0)
        fast = fast_lease_replay(
            events, {}, lambda n: 1e9, fixed_lease_fn(50.0), DURATION,
            scheme="fixed", parameter=50.0)
        _assert_identical(reference, fast)
        assert fast.lease_seconds == 0.0
        assert fast.grants == 1

    def test_absorption_is_strictly_before_expiry(self):
        """A query at exactly the expiry instant goes upstream (the
        oracle's ``time < expiry`` is strict)."""
        events = [QueryEvent(0.0, 0, NAMES[0], 0),
                  QueryEvent(10.0, 0, NAMES[0], 0)]
        for result in (
                simulate_lease_trace(events, {}, lambda n: 1e9,
                                     fixed_lease_fn(10.0), DURATION),
                fast_lease_replay(events, {}, lambda n: 1e9,
                                  fixed_lease_fn(10.0), DURATION)):
            assert result.upstream_messages == 2

    def test_empty_trace(self):
        reference = simulate_lease_trace(
            [], {}, lambda n: 1.0, fixed_lease_fn(1.0), DURATION)
        fast = fast_lease_replay(
            [], {}, lambda n: 1.0, fixed_lease_fn(1.0), DURATION)
        _assert_identical(reference, fast)
        assert fast.total_queries == 0 and fast.pair_count == 0

    def test_pair_index_is_reusable(self):
        """One index serves many sweep points without rebuilding."""
        events = [QueryEvent(float(i), i % 3, NAMES[i % len(NAMES)], i % 2)
                  for i in range(50)]
        index = PairIndex(events)
        for length in (0.5, 3.0, 100.0):
            reference = simulate_lease_trace(
                events, {}, lambda n: 40.0, fixed_lease_fn(length), DURATION,
                scheme="fixed", parameter=length)
            fast = fast_lease_replay(
                index, {}, lambda n: 40.0, fixed_lease_fn(length), DURATION,
                scheme="fixed", parameter=length)
            _assert_identical(reference, fast)

    def test_figure5_engines_agree(self):
        """The public Figure 5 entry point: fast and reference engines
        return identical curves."""
        rng = random.Random(5)
        domains = [DomainSpec(name, category, 3600.0, 1.0,
                              StableProcess(["10.0.0.1"]))
                   for name, category in zip(
                       NAMES, ("regular", "cdn", "dyn", "regular", "cdn",
                               "dyn"))]
        events = sorted(
            (QueryEvent(rng.uniform(0, DURATION), rng.randrange(6),
                        rng.choice(NAMES), rng.randrange(3))
             for _ in range(800)),
            key=lambda e: e.time)
        kwargs = dict(duration=DURATION, fixed_lengths=[5.0, 50.0, 500.0],
                      rate_thresholds=[0.0, 0.01, 0.1, 10.0])
        fast = figure5_curves(events, domains, engine="fast", **kwargs)
        reference = figure5_curves(events, domains, engine="reference",
                                   **kwargs)
        for ref, fst in zip(reference.fixed + reference.dynamic
                            + [reference.polling],
                            fast.fixed + fast.dynamic + [fast.polling]):
            _assert_identical(ref, fst)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            figure5_curves([], [], duration=1.0, fixed_lengths=[],
                           rate_thresholds=[], engine="bogus")


# -- the exact accumulator -----------------------------------------------------


class TestExactSum:
    @settings(max_examples=80, deadline=None)
    @given(terms=st.lists(st.floats(min_value=0.0, max_value=1e9,
                                    allow_nan=False, allow_infinity=False),
                          max_size=100),
           seed=st.integers(0, 2**16))
    def test_order_independent_and_fsum_exact(self, terms, seed):
        shuffled = list(terms)
        random.Random(seed).shuffle(shuffled)
        acc = ExactSum()
        acc.add_all(shuffled)
        assert acc.value() == math.fsum(terms)
