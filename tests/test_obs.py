"""Tests for the observability layer: trace bus, metrics, capture, wiring."""

import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DNScupConfig, DynamicLeasePolicy, attach_dnscup
from repro.dnslib import make_query, RRType
from repro.net import Host, LinkProfile, Network, Simulator
from repro.obs import (
    EVENT_NAMES,
    LEASE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Observability,
    Registry,
    TraceBus,
    WireCapture,
    diff_summaries,
    flatten_summary,
    load_capture,
    load_trace_events,
    merge_traces,
    sniff_header,
    summarize_events,
)
from repro.server import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.zone import load_zone


class TestTraceBus:
    def test_stamps_with_simulator_clock(self, simulator):
        bus = TraceBus(simulator)
        simulator.schedule_at(5.0, lambda: bus.emit("lease.grant", n=1))
        simulator.run()
        assert list(bus) == [(5.0, "lease.grant", {"n": 1})]

    def test_explicit_timestamp_wins(self, simulator):
        bus = TraceBus(simulator)
        bus.emit("lease.grant", t=42.0)
        assert list(bus) == [(42.0, "lease.grant", {})]

    def test_clockless_bus_defaults_to_zero(self):
        bus = TraceBus()
        bus.emit("net.drop")
        assert list(bus) == [(0.0, "net.drop", {})]

    def test_ring_buffer_drops_oldest(self):
        bus = TraceBus(capacity=3)
        for i in range(5):
            bus.emit("net.deliver", t=float(i))
        assert bus.emitted == 5
        assert [t for t, _n, _f in bus] == [2.0, 3.0, 4.0]

    def test_counts_and_select(self):
        bus = TraceBus()
        bus.emit("net.deliver", t=0.0)
        bus.emit("net.drop", t=1.0)
        bus.emit("net.deliver", t=2.0)
        assert bus.counts() == {"net.deliver": 2, "net.drop": 1}
        assert [t for t, _n, _f in bus.select("net.drop")] == [1.0]

    def test_clear_keeps_emitted_total(self):
        bus = TraceBus()
        bus.emit("net.drop", t=0.0)
        bus.clear()
        assert len(bus) == 0
        assert bus.emitted == 1
        # Deliberate discards are `cleared`, never `dropped` — dropped
        # is reserved for ring overflow (an incomplete trace).
        assert bus.cleared == 1
        assert bus.dropped == 0

    def test_dropped_counts_overflow_only(self):
        bus = TraceBus(capacity=2)
        for i in range(3):
            bus.emit("net.deliver", t=float(i))
        assert bus.dropped == 1 and bus.cleared == 0
        bus.clear()
        assert bus.dropped == 1 and bus.cleared == 2
        assert bus.stats() == {"capacity": 2, "emitted": 3, "retained": 0,
                               "dropped": 1, "cleared": 2}

    def test_export_meta_record_carries_stats(self):
        bus = TraceBus(capacity=2)
        for i in range(3):
            bus.emit("net.deliver", t=float(i))
        buf = io.StringIO()
        assert bus.export_jsonl(buf, meta=True) == 3  # meta + 2 retained
        buf.seek(0)
        events = load_trace_events(buf, strict=True)
        assert events[0][1] == "trace.meta"
        assert events[0][2]["dropped"] == 1
        summary = summarize_events(events)
        assert summary["bus"]["dropped"] == 1
        assert summary["bus"]["cleared"] == 0
        # The meta record is bookkeeping, not an event of the run.
        assert summary["span"]["count"] == 2
        assert "trace.meta" not in summary["events"]

    def test_default_export_has_no_meta_record(self):
        bus = TraceBus()
        bus.emit("net.deliver", t=0.0)
        buf = io.StringIO()
        assert bus.export_jsonl(buf) == 1
        assert summarize_events(load_trace_events(
            io.StringIO(buf.getvalue())))["bus"] is None

    def test_strict_load_rejects_unknown_event_names(self):
        good = '{"t":1.0,"event":"notify.send","seq":1}\n'
        bad = good + '{"t":2.0,"event":"notify.sent"}\n'
        assert len(load_trace_events(io.StringIO(bad))) == 2  # lax: loads
        with pytest.raises(ValueError, match="line 2.*notify.sent"):
            load_trace_events(io.StringIO(bad), strict=True)
        assert len(load_trace_events(io.StringIO(good), strict=True)) == 1

    def test_jsonl_round_trip(self):
        bus = TraceBus()
        bus.emit("notify.send", t=1.5, seq=1, cache="10.0.0.1:53")
        bus.emit("notify.ack", t=1.6, seq=1, rtt=0.1)
        buf = io.StringIO()
        assert bus.export_jsonl(buf) == 2
        buf.seek(0)
        assert load_trace_events(buf) == list(bus)

    def test_export_is_byte_stable(self):
        def export():
            bus = TraceBus()
            bus.emit("notify.send", t=1.0, zebra=1, apple=2, mango=3)
            buf = io.StringIO()
            bus.export_jsonl(buf)
            return buf.getvalue()

        first = export()
        assert first == export()
        # t and event lead; remaining keys sorted.
        assert first.startswith('{"t":1.0,"event":"notify.send","apple":2')

    def test_merge_traces_sorts_by_time(self):
        a = [(2.0, "net.drop", {}), (4.0, "net.drop", {})]
        b = [(1.0, "net.deliver", {}), (3.0, "net.deliver", {})]
        assert [t for t, _n, _f in merge_traces(a, b)] == [1.0, 2.0, 3.0, 4.0]

    def test_event_name_contract_is_nonempty(self):
        assert "notify.send" in EVENT_NAMES
        assert "change.detected" in EVENT_NAMES
        assert all("." in name for name in EVENT_NAMES)


class TestMetrics:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_callable(self):
        plain = Gauge("g")
        plain.set(2.5)
        assert plain.value == 2.5
        backing = [7]
        live = Gauge("live", fn=lambda: backing[0])
        assert live.value == 7.0
        backing[0] = 9
        assert live.value == 9.0
        with pytest.raises(ValueError):
            live.set(1.0)

    def test_histogram_buckets_and_exact_stats(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 99.0):
            hist.observe(value)
        # Inclusive upper bounds; overflow lands in the +inf bucket.
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == 0.5 + 1.0 + 1.5 + 99.0
        assert hist.min == 0.5 and hist.max == 99.0
        assert hist.mean == hist.sum / 4

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_export_json_is_strict_json(self, tmp_path):
        # Regression: the implicit +inf bucket bound (and any non-finite
        # stat) used to serialize as the non-JSON `Infinity` token.
        registry = Registry()
        hist = registry.histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(float("inf"))
        path = tmp_path / "metrics.json"
        registry.export_json(str(path))

        def reject_constant(token):
            raise AssertionError(f"non-JSON token in export: {token}")

        snap = json.loads(path.read_text(), parse_constant=reject_constant)
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["buckets"][-1][0] is None  # +inf bound
        assert snap["histograms"]["h"]["sum"] is None  # inf sum -> null
        assert snap["histograms"]["h"]["max"] is None
        assert snap["histograms"]["h"]["min"] == 0.5

    def test_bisect_observe_matches_linear_scan(self):
        # The bisect fast path must land every value in the same bucket
        # the old linear scan over inclusive upper bounds chose.
        bounds = (0.001, 0.01, 0.1, 1.0)
        hist = Histogram("h", buckets=bounds)
        values = [0.0005, 0.001, 0.0011, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0]
        for value in values:
            hist.observe(value)
        linear = [0] * (len(bounds) + 1)
        for value in values:
            for i, bound in enumerate(bounds):
                if value <= bound:
                    linear[i] += 1
                    break
            else:
                linear[-1] += 1
        assert hist.counts == linear
        # Snapshot shape unchanged by the bisect rewrite.
        assert [count for _bound, count in hist.as_dict()["buckets"]] \
            == linear

    def test_registry_idempotent_and_collision_checked(self):
        registry = Registry()
        assert registry.counter("x") is registry.counter("x")
        registry.gauge("g")
        with pytest.raises(ValueError):
            registry.counter("g")
        with pytest.raises(ValueError):
            registry.histogram("x")
        assert registry.names() == ["g", "x"]

    def test_snapshot_shape_and_export(self, tmp_path):
        registry = Registry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", LEASE_BUCKETS).observe(200.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        path = tmp_path / "metrics.json"
        registry.export_json(str(path))
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(snap))


class TestWireCapture:
    def test_sniff_header(self):
        query = make_query("www.example.com", RRType.A)
        msg_id, opcode, qr = sniff_header(query.to_wire())
        assert msg_id == query.id
        assert opcode == "QUERY"
        assert qr is False
        assert sniff_header(b"") == (None, "?", None)
        assert sniff_header(b"\x12\x34") == (0x1234, "?", None)

    def test_record_and_fates(self):
        capture = WireCapture()
        wire = make_query("a.example.", RRType.A).to_wire()
        capture.record(1.0, "udp", ("a", 1), ("b", 53), wire, "delivered")
        capture.record(2.0, "udp", ("a", 1), ("b", 53), wire, "dropped")
        assert len(capture) == 2
        assert capture.fates() == {"delivered": 1, "dropped": 1}
        assert capture.records[0]["src"] == "a:1"
        assert capture.records[0]["size"] == len(wire)

    def test_capacity_bound(self):
        capture = WireCapture(capacity=1)
        capture.record(1.0, "udp", ("a", 1), ("b", 1), b"xx", "delivered")
        capture.record(2.0, "udp", ("a", 1), ("b", 1), b"xx", "delivered")
        assert len(capture) == 1
        assert capture.dropped == 1

    def test_jsonl_round_trip(self):
        capture = WireCapture()
        capture.record(1.0, "udp", ("a", 1), ("b", 1), b"\x00\x01\x80",
                       "delivered", dup=True)
        buf = io.StringIO()
        assert capture.export_jsonl(buf) == 1
        buf.seek(0)
        assert load_capture(buf) == capture.records


class TestAnalyze:
    def test_summarize_counts_and_windows(self):
        events = [
            (10.0, "change.detected", {"seq": 1}),
            (10.0, "notify.send", {"seq": 1}),
            (10.0, "notify.send", {"seq": 1}),
            (10.2, "notify.ack", {"seq": 1, "rtt": 0.2}),
            (10.5, "notify.ack", {"seq": 1, "rtt": 0.5}),
            (20.0, "change.detected", {"seq": 2}),
            (20.0, "notify.send", {"seq": 2}),
            (23.0, "notify.timeout", {"seq": 2}),
        ]
        summary = summarize_events(events)
        assert summary["notify"]["sends"] == 3
        assert summary["notify"]["acks"] == 2
        assert summary["notify"]["timeouts"] == 1
        assert summary["notify"]["ack_rtt"]["sum"] == 0.2 + 0.5
        assert summary["changes"]["detected"] == 2
        # Change 1's window runs to the *last* ack; change 2 never acked.
        assert summary["changes"]["settled_with_ack"] == 1
        assert summary["changes"]["consistency_window"]["sum"] == 0.5

    def test_empty_summary(self):
        summary = summarize_events([])
        assert summary["span"]["count"] == 0
        assert summary["notify"]["ack_rtt"]["mean"] is None

    def test_single_event_summary(self):
        summary = summarize_events([(2.5, "notify.ack",
                                     {"seq": 1, "rtt": 0.25})])
        assert summary["span"] == {"first": 2.5, "last": 2.5, "count": 1}
        assert summary["notify"]["acks"] == 1
        assert summary["notify"]["ack_rtt"]["sum"] == 0.25
        assert summary["notify"]["ack_rtt"]["min"] == 0.25
        # An ack with no detection event settles nothing.
        assert summary["changes"]["consistency_window"]["count"] == 0

    def test_flatten_and_diff(self):
        a = summarize_events([(1.0, "net.drop", {})])
        b = summarize_events([(1.0, "net.deliver", {})])
        flat = flatten_summary(a)
        assert flat["net.dropped"] == 1
        assert diff_summaries(a, a) == []
        diff = dict((key, (left, right))
                    for key, left, right in diff_summaries(a, b))
        assert diff["net.dropped"] == (1, 0)
        assert diff["net.delivered"] == (0, 1)

    def test_diff_empty_against_single_event(self):
        empty = summarize_events([])
        assert diff_summaries(empty, empty) == []
        single = summarize_events([(1.0, "net.drop", {})])
        diff = dict((key, (left, right))
                    for key, left, right in diff_summaries(empty, single))
        assert diff["net.dropped"] == (0, 1)
        assert diff["span.count"] == (0, 1)
        assert diff["span.first"] == (None, 1.0)


#: Arbitrary JSON-safe field values (finite floats: NaN never compares
#: equal, and the loader should see exactly what was emitted).
_json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-2**53, max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=8)

_fields = st.dictionaries(
    st.text(min_size=1, max_size=10).filter(lambda k: k not in ("t", "event")),
    _json_values, max_size=4)

_events = st.lists(st.tuples(
    st.floats(allow_nan=False, allow_infinity=False),
    st.sampled_from(sorted(EVENT_NAMES)),
    _fields), max_size=12)


class TestTraceRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(events=_events)
    def test_export_load_round_trips_any_json_safe_fields(self, events):
        bus = TraceBus()
        for t, name, fields in events:
            bus.emit(name, t=t, **fields)
        buf = io.StringIO()
        assert bus.export_jsonl(buf) == len(events)
        buf.seek(0)
        assert load_trace_events(buf, strict=True) == list(bus)


class TestObservabilityWiring:
    def test_bind_single_reader_reads_through(self):
        obs = Observability(trace=TraceBus(), registry=Registry())
        backing = [3]
        obs.bind("x", lambda: backing[0])
        assert obs.registry.snapshot()["gauges"]["x"] == 3.0

    def test_bind_repeated_sums(self):
        obs = Observability(trace=TraceBus(), registry=Registry())
        obs.bind("x", lambda: 2)
        obs.bind("x", lambda: 5)
        assert obs.registry.snapshot()["gauges"]["x"] == 7.0

    def test_for_simulator_tracks_event_loop(self):
        simulator = Simulator()
        obs = Observability.for_simulator(simulator)
        simulator.schedule_at(3.0, lambda: None)
        simulator.run()
        gauges = obs.registry.snapshot()["gauges"]
        assert gauges["sim.now"] == 3.0
        assert gauges["sim.pending"] == 0
        assert obs.registry.counter("sim.events_observed").value == 1

    def test_network_counters_mirrored(self, simulator):
        network = Network(simulator, seed=1)
        obs = Observability.for_simulator(simulator, capture=True)
        obs.observe_network(network)
        network.bind(("b", 1), lambda *a: None)
        network.send(b"hello", ("a", 1), ("b", 1))
        network.send(b"bye", ("a", 1), ("nowhere", 9))
        simulator.run()
        gauges = obs.registry.snapshot()["gauges"]
        assert gauges["net.datagrams_sent"] == 2
        assert gauges["net.datagrams_delivered"] == 1
        assert gauges["net.datagrams_unreachable"] == 1
        assert obs.trace.counts() == {"net.deliver": 1, "net.unreachable": 1}
        assert obs.capture.fates() == {"delivered": 1, "unreachable": 1}

    def test_middleware_instrumented_end_to_end(self, simulator):
        network = Network(simulator, seed=2)
        obs = Observability.for_simulator(simulator)
        obs.observe_network(network)
        zone = load_zone("""\
$ORIGIN example.com.
$TTL 300
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.0.0.1
www  IN A   10.0.0.10
""")
        auth = AuthoritativeServer(Host(network, "10.0.0.1"), [zone])
        attach_dnscup(auth, policy=DynamicLeasePolicy(0.0),
                      config=DNScupConfig(observability=obs))
        resolver = RecursiveResolver(Host(network, "10.0.0.2"),
                                     [("10.0.0.1", 53)], dnscup_enabled=True)
        client = StubResolver(Host(network, "10.0.0.3"), ("10.0.0.2", 53),
                              cache_seconds=0.0)
        client.lookup("www.example.com", lambda addrs, rc: None)
        simulator.run()
        zone.replace_address("www.example.com", ["10.0.0.99"])
        simulator.run()

        counts = obs.trace.counts()
        assert counts["lease.grant"] == 1
        assert counts["change.detected"] == 1
        assert counts["notify.send"] == 1
        assert counts["notify.ack"] == 1
        assert counts["change.settled"] == 1
        snap = obs.registry.snapshot()
        assert snap["gauges"]["lease.grants"] == 1
        assert snap["gauges"]["notify.sent"] == 1
        assert snap["gauges"]["notify.acked"] == 1
        assert snap["gauges"]["notify.in_flight"] == 0
        assert snap["histograms"]["lease.length"]["count"] == 1
        assert snap["histograms"]["notify.ack_rtt"]["count"] == 1
        assert snap["histograms"]["notify.consistency_window"]["count"] == 1
        # The trace-derived summary reproduces the live histograms exactly.
        summary = summarize_events(list(obs.trace.events))
        assert summary["notify"]["ack_rtt"]["sum"] \
            == snap["histograms"]["notify.ack_rtt"]["sum"]
        assert summary["changes"]["consistency_window"]["sum"] \
            == snap["histograms"]["notify.consistency_window"]["sum"]

    def test_two_middlewares_aggregate_into_one_registry(self, simulator):
        network = Network(simulator, seed=3)
        obs = Observability.for_simulator(simulator)
        middlewares = []
        for i, origin in enumerate(("alpha.test.", "beta.test.")):
            zone = load_zone(f"""\
$ORIGIN {origin}
$TTL 300
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.0.{i}.1
www  IN A   10.0.{i}.10
""")
            auth = AuthoritativeServer(Host(network, f"10.0.{i}.1"), [zone])
            middlewares.append(attach_dnscup(
                auth, policy=DynamicLeasePolicy(0.0),
                config=DNScupConfig(observability=obs)))
        # One grant on each server's table; the shared gauge sums both.
        middlewares[0].table.grant(("10.1.0.1", 53), "www.alpha.test.",
                                   RRType.A, 0.0, 60.0)
        middlewares[1].table.grant(("10.1.0.2", 53), "www.beta.test.",
                                   RRType.A, 0.0, 60.0)
        gauges = obs.registry.snapshot()["gauges"]
        assert gauges["lease.grants"] == 2.0
        assert gauges["lease.active"] == 2.0
        assert obs.trace.counts()["lease.grant"] == 2
        # Both grants landed in the one shared lease-length histogram.
        hist = obs.registry.snapshot()["histograms"]["lease.length"]
        assert hist["count"] == 2


class TestLinkStats:
    def test_per_link_fate_counters(self, simulator):
        network = Network(simulator, seed=7)
        lossy = LinkProfile(loss_rate=0.999)
        network.set_link_profile("a", "b", lossy)
        network.bind(("b", 1), lambda *a: None)
        for _ in range(40):
            network.send(b"x", ("a", 1), ("b", 1))
            network.send(b"x", ("a", 1), ("c", 1))  # default link, unbound
        simulator.run()
        assert lossy.stats.dropped + lossy.stats.delivered == 40
        assert lossy.stats.dropped >= 35
        default = network.default_profile.stats
        assert default.unreachable == 40
        # Aggregate stats agree with the per-link split.
        assert network.stats.datagrams_lost == lossy.stats.dropped
        assert network.stats.datagrams_unreachable == default.unreachable

    def test_duplication_counted_per_link(self, simulator):
        network = Network(simulator, seed=8)
        dupful = LinkProfile(duplicate_rate=0.5)
        network.set_link_profile("a", "b", dupful)
        network.bind(("b", 1), lambda *a: None)
        for _ in range(100):
            network.send(b"x", ("a", 1), ("b", 1))
        simulator.run()
        assert dupful.stats.duplicated > 20
        assert dupful.stats.duplicated == network.stats.datagrams_duplicated
        assert dupful.stats.delivered == 100 + dupful.stats.duplicated

    def test_replace_starts_fresh_counters(self):
        import dataclasses
        profile = LinkProfile(loss_rate=0.1)
        profile.stats.dropped = 5
        fresh = dataclasses.replace(profile)
        assert fresh.stats.dropped == 0
        assert fresh.loss_rate == 0.1

    def test_reset(self):
        profile = LinkProfile()
        profile.stats.delivered = 3
        profile.stats.reset()
        assert profile.stats.delivered == 0
