"""Tests for RFC 2136 dynamic update processing."""

import pytest

from repro.dnslib import (
    A,
    Message,
    NS,
    Name,
    Opcode,
    Rcode,
    ResourceRecord,
    RRType,
    TXT,
    RRSet,
    make_query,
    make_update,
)
from repro.zone import (
    UpdateProcessor,
    load_zone,
    prereq_name_in_use,
    prereq_name_not_in_use,
    prereq_rrset_absent,
    prereq_rrset_exists,
    prereq_rrset_exists_value,
    update_add,
    update_delete_name,
    update_delete_record,
    update_delete_rrset,
)
from tests.conftest import EXAMPLE_ZONE_TEXT


@pytest.fixture
def zone():
    return load_zone(EXAMPLE_ZONE_TEXT)


@pytest.fixture
def processor(zone):
    return UpdateProcessor(zone)


def run_update(processor, *updates, prereqs=()):
    message = make_update("example.com")
    message.prerequisite.extend(prereqs)
    message.update.extend(updates)
    # Wire roundtrip so the test exercises encode/decode of pseudo-records.
    decoded = Message.from_wire(message.to_wire())
    return processor.process(decoded)


class TestZoneSection:
    def test_wrong_opcode_formerr(self, processor):
        response = processor.process(make_query("example.com", RRType.A))
        assert response.rcode == Rcode.FORMERR

    def test_wrong_zone_notauth(self, processor):
        message = make_update("other.org")
        assert processor.process(message).rcode == Rcode.NOTAUTH

    def test_non_soa_zone_type_formerr(self, processor):
        message = make_update("example.com")
        message.zone[0].rrtype = RRType.A
        assert processor.process(message).rcode == Rcode.FORMERR


class TestPrerequisites:
    def test_rrset_exists_passes(self, processor):
        response = run_update(
            processor,
            update_add(ResourceRecord("new.example.com", RRType.A, 60,
                                      A("5.5.5.5"))),
            prereqs=[prereq_rrset_exists("www.example.com", RRType.A)])
        assert response.rcode == Rcode.NOERROR

    def test_rrset_exists_fails_nxrrset(self, processor):
        response = run_update(
            processor,
            prereqs=[prereq_rrset_exists("nope.example.com", RRType.A)])
        assert response.rcode == Rcode.NXRRSET

    def test_rrset_absent_passes(self, processor):
        response = run_update(
            processor,
            prereqs=[prereq_rrset_absent("nope.example.com", RRType.A)])
        assert response.rcode == Rcode.NOERROR

    def test_rrset_absent_fails_yxrrset(self, processor):
        response = run_update(
            processor,
            prereqs=[prereq_rrset_absent("www.example.com", RRType.A)])
        assert response.rcode == Rcode.YXRRSET

    def test_name_in_use_passes(self, processor):
        response = run_update(processor,
                              prereqs=[prereq_name_in_use("www.example.com")])
        assert response.rcode == Rcode.NOERROR

    def test_name_in_use_fails_nxdomain(self, processor):
        response = run_update(processor,
                              prereqs=[prereq_name_in_use("nope.example.com")])
        assert response.rcode == Rcode.NXDOMAIN

    def test_name_not_in_use_fails_yxdomain(self, processor):
        response = run_update(
            processor, prereqs=[prereq_name_not_in_use("www.example.com")])
        assert response.rcode == Rcode.YXDOMAIN

    def test_value_dependent_match(self, processor, zone):
        rrset = zone.get_rrset("www.example.com", RRType.A)
        prereqs = [prereq_rrset_exists_value("www.example.com", RRType.A, rdata)
                   for rdata in rrset.rdatas]
        assert run_update(processor, prereqs=prereqs).rcode == Rcode.NOERROR

    def test_value_dependent_mismatch(self, processor):
        prereqs = [prereq_rrset_exists_value("www.example.com", RRType.A,
                                             A("9.9.9.9"))]
        assert run_update(processor, prereqs=prereqs).rcode == Rcode.NXRRSET

    def test_prereq_outside_zone_notzone(self, processor):
        assert run_update(
            processor,
            prereqs=[prereq_rrset_exists("www.other.org", RRType.A)]
        ).rcode == Rcode.NOTZONE

    def test_nonzero_ttl_prereq_formerr(self, processor):
        bad = prereq_rrset_exists("www.example.com", RRType.A)
        bad = ResourceRecord(bad.name, bad.rrtype, 5, bad.rdata, bad.rrclass)
        assert run_update(processor, prereqs=[bad]).rcode == Rcode.FORMERR


class TestUpdates:
    def test_add_new_rrset(self, processor, zone):
        response = run_update(
            processor,
            update_add(ResourceRecord("new.example.com", RRType.A, 60,
                                      A("5.5.5.5"))))
        assert response.rcode == Rcode.NOERROR
        assert zone.get_rrset("new.example.com", RRType.A) is not None

    def test_add_merges_into_existing(self, processor, zone):
        run_update(processor,
                   update_add(ResourceRecord("www.example.com", RRType.A, 60,
                                             A("7.7.7.7"))))
        rrset = zone.get_rrset("www.example.com", RRType.A)
        assert A("7.7.7.7") in rrset
        assert len(rrset) == 3

    def test_delete_rrset(self, processor, zone):
        run_update(processor, update_delete_rrset("www.example.com", RRType.A))
        assert zone.get_rrset("www.example.com", RRType.A) is None

    def test_delete_one_record(self, processor, zone):
        run_update(processor,
                   update_delete_record("www.example.com", RRType.A,
                                        A("10.0.0.10")))
        rrset = zone.get_rrset("www.example.com", RRType.A)
        assert len(rrset) == 1
        assert A("10.0.0.11") in rrset

    def test_delete_last_record_removes_rrset(self, processor, zone):
        run_update(processor,
                   update_delete_record("mail.example.com", RRType.A,
                                        A("10.0.0.20")))
        assert zone.get_rrset("mail.example.com", RRType.A) is None

    def test_delete_name(self, processor, zone):
        run_update(processor, update_delete_name("www.example.com"))
        assert not zone.rrsets_at("www.example.com")

    def test_apex_soa_protected_from_delete(self, processor, zone):
        run_update(processor, update_delete_rrset("example.com", RRType.SOA))
        assert zone.get_rrset("example.com", RRType.SOA) is not None

    def test_apex_ns_protected_from_rrset_delete(self, processor, zone):
        run_update(processor, update_delete_rrset("example.com", RRType.NS))
        assert zone.get_rrset("example.com", RRType.NS) is not None

    def test_last_apex_ns_record_protected(self, processor, zone):
        run_update(processor,
                   update_delete_record("example.com", RRType.NS,
                                        NS("ns1.example.com")))
        run_update(processor,
                   update_delete_record("example.com", RRType.NS,
                                        NS("ns2.example.com")))
        rrset = zone.get_rrset("example.com", RRType.NS)
        assert rrset is not None and len(rrset) == 1

    def test_apex_delete_all_keeps_soa_and_ns(self, processor, zone):
        run_update(processor, update_delete_name("example.com"))
        assert zone.get_rrset("example.com", RRType.SOA) is not None
        assert zone.get_rrset("example.com", RRType.NS) is not None
        assert zone.get_rrset("example.com", RRType.MX) is None

    def test_replace_idiom(self, processor, zone):
        """delete-rrset + add = the paper's DN2IP mapping change."""
        response = run_update(
            processor,
            update_delete_rrset("www.example.com", RRType.A),
            update_add(ResourceRecord("www.example.com", RRType.A, 300,
                                      A("172.16.0.1"))))
        assert response.rcode == Rcode.NOERROR
        rrset = zone.get_rrset("www.example.com", RRType.A)
        assert rrset.rdatas == (A("172.16.0.1"),)

    def test_cname_add_on_occupied_name_skipped(self, processor, zone):
        from repro.dnslib import CNAME
        run_update(processor,
                   update_add(ResourceRecord("www.example.com", RRType.CNAME,
                                             60, CNAME("x.example.com"))))
        assert zone.get_rrset("www.example.com", RRType.CNAME) is None

    def test_add_on_cname_owner_skipped(self, processor, zone):
        run_update(processor,
                   update_add(ResourceRecord("ftp.example.com", RRType.A,
                                             60, A("6.6.6.6"))))
        assert zone.get_rrset("ftp.example.com", RRType.A) is None

    def test_update_outside_zone_notzone(self, processor):
        response = run_update(
            processor,
            update_add(ResourceRecord("w.other.org", RRType.A, 60,
                                      A("5.5.5.5"))))
        assert response.rcode == Rcode.NOTZONE

    def test_any_type_add_formerr(self, processor):
        bad = ResourceRecord("w.example.com", RRType.ANY, 60,
                             A("5.5.5.5"))
        assert run_update(processor, bad).rcode == Rcode.FORMERR

    def test_atomicity_on_prereq_failure(self, processor, zone):
        """A failed prerequisite must leave the zone untouched."""
        before = zone.serial
        response = run_update(
            processor,
            update_add(ResourceRecord("new.example.com", RRType.A, 60,
                                      A("5.5.5.5"))),
            prereqs=[prereq_rrset_exists("missing.example.com", RRType.A)])
        assert response.rcode == Rcode.NXRRSET
        assert zone.get_rrset("new.example.com", RRType.A) is None
        assert zone.serial == before

    def test_serial_bumps_once_per_message(self, processor, zone):
        before = zone.serial
        run_update(
            processor,
            update_add(ResourceRecord("a.example.com", RRType.A, 60,
                                      A("1.1.1.1"))),
            update_add(ResourceRecord("b.example.com", RRType.A, 60,
                                      A("2.2.2.2"))))
        assert zone.serial == before + 1
