"""The live telemetry plane: exposition format, endpoint, fail-fast.

Pure pieces (render/parse/sanitize) run everywhere; the endpoint and
fail-fast pieces drive a reduced live testbed over real loopback
sockets, mirroring the CI ``live-transport`` telemetry step.
"""

from __future__ import annotations

import pytest

from repro.net import (
    TelemetryError,
    loopback_available,
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
)
from repro.obs import LATENCY_BUCKETS, Registry, audit_trace
from repro.sim import TestbedConfig, make_live_testbed, run_figure7_scenario

SMALL = TestbedConfig(zone_count=8, observability=True)

needs_loopback = pytest.mark.skipif(
    not loopback_available(),
    reason="loopback UDP unavailable on this platform")


class TestSanitize:
    def test_dots_become_underscores_under_prefix(self):
        assert sanitize_metric_name("net.datagrams_sent") \
            == "dnscup_net_datagrams_sent"

    def test_arbitrary_punctuation_is_flattened(self):
        assert sanitize_metric_name("a.b-c/d e", prefix="x") == "x_a_b_c_d_e"

    def test_empty_prefix_keeps_bare_name(self):
        assert sanitize_metric_name("lease.grants", prefix="") \
            == "lease_grants"


def sample_registry():
    registry = Registry()
    registry.counter("notify.sent").inc(7)
    registry.gauge("telemetry.ticks").set(3.0)
    hist = registry.histogram("notify.rtt", LATENCY_BUCKETS)
    for value in (0.0005, 0.002, 0.002, 5.0):
        hist.observe(value)
    return registry


class TestExposition:
    def test_round_trip_recovers_every_sample(self):
        registry = sample_registry()
        text = render_exposition(registry.snapshot())
        samples = parse_exposition(text)
        assert samples["dnscup_notify_sent"] == 7.0
        assert samples["dnscup_telemetry_ticks"] == 3.0
        assert samples["dnscup_notify_rtt_count"] == 4.0
        assert samples["dnscup_notify_rtt_sum"] == pytest.approx(5.0045)
        assert samples['dnscup_notify_rtt_bucket{le="+Inf"}'] == 4.0

    def test_histogram_buckets_are_cumulative(self):
        text = render_exposition(sample_registry().snapshot())
        samples = parse_exposition(text)
        buckets = [(name, value) for name, value in samples.items()
                   if name.startswith("dnscup_notify_rtt_bucket")]
        values = [value for _name, value in buckets]
        assert values == sorted(values), "bucket counts must be cumulative"
        assert buckets[-1][0].endswith('le="+Inf"}')
        assert buckets[-1][1] == samples["dnscup_notify_rtt_count"]

    def test_type_lines_precede_samples(self):
        lines = render_exposition(sample_registry().snapshot()).splitlines()
        assert "# TYPE dnscup_notify_sent counter" in lines
        assert "# TYPE dnscup_telemetry_ticks gauge" in lines
        assert "# TYPE dnscup_notify_rtt histogram" in lines
        assert lines.index("# TYPE dnscup_notify_sent counter") \
            < lines.index("dnscup_notify_sent 7")

    def test_render_is_deterministic(self):
        first = render_exposition(sample_registry().snapshot())
        second = render_exposition(sample_registry().snapshot())
        assert first == second

    def test_parse_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_exposition("a 1\na 2\n")

    def test_parse_rejects_bad_values(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_exposition("a one\n")

    def test_parse_rejects_bare_value(self):
        with pytest.raises(ValueError, match="no sample name"):
            parse_exposition("42\n")

    def test_parse_skips_comments_and_blanks(self):
        assert parse_exposition("# HELP x\n\nx 1\n") == {"x": 1.0}


@needs_loopback
class TestLivePlane:
    def test_scrape_audits_and_matches_batch(self):
        with make_live_testbed(SMALL) as testbed:
            plane = testbed.enable_telemetry(interval=0.05)
            run_figure7_scenario(testbed, updates=3)
            body = plane.scrape()
            samples = parse_exposition(body)
            assert samples, "mid-run scrape produced no samples"
            assert "dnscup_telemetry_audit_events" in samples
            assert "dnscup_telemetry_audit_peak_tracked_spans" in samples
            assert samples["dnscup_telemetry_audit_violations"] == 0.0
            plane.stop()
            # The streaming verdict is the batch verdict.
            events = list(testbed.observability.trace.events)
            stream = plane.auditor.report()
            batch = audit_trace(events)
            assert stream.ok and batch.ok
            assert stream.checks == batch.checks
            assert stream.events_audited == len(events)
            assert plane.violations == []
            # Final document reflects the completed run.
            final = parse_exposition(plane.document)
            assert final["dnscup_telemetry_audit_events"] == len(events)

    def test_enable_is_idempotent_and_requires_observability(self):
        with make_live_testbed(SMALL) as testbed:
            plane = testbed.enable_telemetry()
            assert testbed.enable_telemetry() is plane
            assert plane.endpoint[0] == "127.0.0.1"
        with make_live_testbed(TestbedConfig(zone_count=8)) as bare:
            with pytest.raises(ValueError):
                bare.enable_telemetry()

    def test_fail_fast_aborts_the_drain(self):
        with make_live_testbed(SMALL) as testbed:
            testbed.enable_telemetry(interval=0.05)
            # An orphan ack — no grant, change, or send before it — is
            # a causality violation the moment the tap feeds it.
            testbed.observability.trace.emit(
                "notify.ack", seq=99, cache="10.9.9.9:53",
                name="phantom.example.com.", rrtype="A", rtt=0.001)
            with pytest.raises(TelemetryError, match="causality"):
                testbed.simulator.run()

    def test_fail_fast_off_keeps_the_run_alive(self):
        with make_live_testbed(SMALL) as testbed:
            plane = testbed.enable_telemetry(interval=0.05, fail_fast=False)
            testbed.observability.trace.emit(
                "notify.ack", seq=99, cache="10.9.9.9:53",
                name="phantom.example.com.", rrtype="A", rtt=0.001)
            testbed.simulator.run()
            assert [v.kind for v in plane.violations] == ["causality"]
