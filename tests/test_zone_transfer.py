"""Tests for NOTIFY/AXFR/IXFR replication."""

import pytest

from repro.dnslib import A, RRType, SOA
from repro.zone import (
    ChangeLog,
    Zone,
    ZoneMaster,
    ZoneSlave,
    load_zone,
    zones_equal,
)
from tests.conftest import EXAMPLE_ZONE_TEXT


@pytest.fixture
def master_zone():
    return load_zone(EXAMPLE_ZONE_TEXT)


@pytest.fixture
def master(master_zone):
    return ZoneMaster(master_zone)


@pytest.fixture
def slave(master):
    """A slave bootstrapped by one full transfer."""
    replica_zone = load_zone(EXAMPLE_ZONE_TEXT)
    slave = ZoneSlave(replica_zone)
    serial, rrsets = master.serve_axfr()
    slave.apply_axfr(serial, rrsets)
    return slave


class TestChangeLog:
    def test_records_and_replays(self):
        log = ChangeLog()
        log.record(1, 2, ["a"])
        log.record(2, 3, ["b", "c"])
        assert log.replay_from(1) == ["a", "b", "c"]
        assert log.replay_from(2) == ["b", "c"]

    def test_unknown_serial_returns_none(self):
        log = ChangeLog()
        log.record(5, 6, ["x"])
        assert log.replay_from(1) is None

    def test_capacity_evicts_oldest(self):
        log = ChangeLog(capacity=2)
        log.record(1, 2, ["a"])
        log.record(2, 3, ["b"])
        log.record(3, 4, ["c"])
        assert log.replay_from(1) is None
        assert log.replay_from(2) == ["b", "c"]


class TestAxfr:
    def test_axfr_bootstraps_identical_content(self, master_zone, slave):
        assert zones_equal(master_zone, slave.zone, ignore_soa=False)

    def test_axfr_adopts_master_serial(self, master_zone, slave):
        assert slave.zone.serial == master_zone.serial


class TestIxfr:
    def test_incremental_change_propagates(self, master_zone, master, slave):
        master_zone.replace_address("www.example.com", ["9.9.9.9"])
        outcome = slave.refresh_from(master)
        assert outcome == "ixfr"
        assert zones_equal(master_zone, slave.zone, ignore_soa=False)
        rrset = slave.zone.get_rrset("www.example.com", RRType.A)
        assert rrset.rdatas == (A("9.9.9.9"),)

    def test_deletion_propagates(self, master_zone, master, slave):
        master_zone.delete_rrset("mail.example.com", RRType.A)
        slave.refresh_from(master)
        assert slave.zone.get_rrset("mail.example.com", RRType.A) is None

    def test_noop_when_current(self, master, slave):
        assert slave.refresh_from(master) == "current"
        assert slave.transfers_incremental == 0

    def test_multiple_changes_replayed_in_order(self, master_zone, master, slave):
        master_zone.replace_address("www.example.com", ["1.1.1.1"])
        master_zone.replace_address("www.example.com", ["2.2.2.2"])
        master_zone.replace_address("www.example.com", ["3.3.3.3"])
        slave.refresh_from(master)
        rrset = slave.zone.get_rrset("www.example.com", RRType.A)
        assert rrset.rdatas == (A("3.3.3.3"),)
        assert slave.zone.serial == master_zone.serial

    def test_fallback_to_axfr_when_log_expired(self, master_zone, slave):
        cramped = ZoneMaster(load_zone(EXAMPLE_ZONE_TEXT), log_capacity=1)
        cramped.zone.replace_address("www.example.com", ["1.1.1.1"])
        cramped.zone.replace_address("www.example.com", ["2.2.2.2"])
        stale_slave = ZoneSlave(load_zone(EXAMPLE_ZONE_TEXT))
        outcome = stale_slave.refresh_from(cramped)
        assert outcome == "axfr"
        assert zones_equal(cramped.zone, stale_slave.zone, ignore_soa=False)

    def test_needs_refresh_uses_serial_arithmetic(self, slave):
        assert slave.needs_refresh(slave.serial + 1)
        assert not slave.needs_refresh(slave.serial)


class TestEndToEndReplication:
    def test_two_slaves_stay_consistent(self, master_zone, master):
        slaves = []
        for _ in range(2):
            replica = ZoneSlave(load_zone(EXAMPLE_ZONE_TEXT))
            serial, rrsets = master.serve_axfr()
            replica.apply_axfr(serial, rrsets)
            slaves.append(replica)
        for step in range(5):
            master_zone.replace_address("www.example.com", [f"10.9.0.{step + 1}"])
            for replica in slaves:
                replica.refresh_from(master)
        for replica in slaves:
            assert zones_equal(master_zone, replica.zone, ignore_soa=False)
