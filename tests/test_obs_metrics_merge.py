"""Registry/Histogram merging: exact, grouping-independent, byte-stable.

The shard-merged metrics contract (DESIGN.md §12): histograms loaded
through :meth:`Histogram.add_exact` carry Shewchuk partials, so merging
per-shard registries in *any* grouping exports byte-identical JSON —
the property ``sharded_scan_metrics`` leans on.  Plus the snapshot
insertion-order regression: two registries holding the same instrument
values must export the same bytes no matter the registration order.
"""

from __future__ import annotations

import bisect
import io
import math
import random

import pytest

from repro.obs import Histogram, LATENCY_BUCKETS, LEASE_BUCKETS, Registry


def awkward_values(count=500, seed=2006):
    """Floats spanning 20 orders of magnitude: the worst case for
    naive float summation, the no-op case for exact summation."""
    rng = random.Random(seed)
    values = []
    for _ in range(count):
        values.append(rng.uniform(0.0, 10.0) * 10.0 ** rng.randint(-9, 9))
    return values


def exact_row(values, bounds):
    """(bucket_counts, partials, min, max) for one add_exact load."""
    counts = [0] * (len(bounds) + 1)
    for value in values:
        counts[bisect.bisect_left(bounds, value)] += 1
    partials = []
    for value in values:
        _fold(partials, value)
    return (counts, partials,
            min(values) if values else None,
            max(values) if values else None)


def _fold(partials, value):
    x = value
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


def export_bytes(registry):
    buffer = io.StringIO()
    registry.export_json(buffer)
    return buffer.getvalue()


def chunk(values, pieces):
    size = max(1, math.ceil(len(values) / pieces))
    return [values[i:i + size] for i in range(0, len(values), size)]


def registry_for(groups):
    """One registry per grouping: every group loaded via add_exact,
    all merged into the first."""
    merged = Registry()
    for group in groups:
        part = Registry()
        part.counter("scale.queries").inc(len(group))
        counts, partials, minimum, maximum = exact_row(group, LEASE_BUCKETS)
        part.histogram("scale.lease_term", LEASE_BUCKETS).add_exact(
            counts, partials, minimum=minimum, maximum=maximum)
        merged.merge(part)
    return merged


class TestExactMerge:
    def test_any_grouping_exports_identical_bytes(self):
        values = awkward_values()
        exports = {pieces: export_bytes(registry_for(chunk(values, pieces)))
                   for pieces in (1, 2, 8)}
        assert exports[1] == exports[2] == exports[8]

    def test_merged_sum_is_correctly_rounded(self):
        values = awkward_values()
        merged = registry_for(chunk(values, 8))
        hist = merged.histogram("scale.lease_term", LEASE_BUCKETS)
        assert hist.sum == math.fsum(values)
        assert hist.count == len(values)

    def test_observe_path_degrades_merge_to_float_sum(self):
        left = Histogram("h", LATENCY_BUCKETS)
        left.observe(0.1)
        right = Histogram("h", LATENCY_BUCKETS)
        right.observe(0.2)
        left.merge(right)
        assert left.count == 2
        assert left.sum == 0.1 + 0.2
        assert left._partials is None

    def test_bounds_mismatch_refused(self):
        left = Histogram("h", LATENCY_BUCKETS)
        right = Histogram("h", LEASE_BUCKETS)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            left.merge(right)

    def test_add_exact_requires_full_bucket_row(self):
        hist = Histogram("h", LATENCY_BUCKETS)
        with pytest.raises(ValueError, match="buckets"):
            hist.add_exact([1, 2], [3.0])


class TestRegistryMerge:
    def test_counters_sum_gauges_last_write_wins(self):
        left = Registry()
        left.counter("c").inc(3)
        left.gauge("g").set(1.5)
        right = Registry()
        right.counter("c").inc(4)
        right.counter("only_right").inc(2)
        right.gauge("g").set(2.5)
        assert left.merge(right) is left
        snap = left.snapshot()
        assert snap["counters"] == {"c": 7, "only_right": 2}
        # Gauges are point-in-time levels, not flows: merging shard
        # registries in shard order keeps the *last* shard's reading
        # rather than summing unrelated instantaneous values.
        assert snap["gauges"] == {"g": 2.5}

    def test_gauge_merge_order_decides_winner(self):
        shards = []
        for value in (10.0, -3.0, 7.5):
            reg = Registry()
            reg.gauge("level").set(value)
            shards.append(reg)
        merged = Registry()
        for reg in shards:
            merged.merge(reg)
        assert merged.snapshot()["gauges"] == {"level": 7.5}
        # A shard that never registered the gauge leaves the value alone.
        merged.merge(Registry())
        assert merged.snapshot()["gauges"] == {"level": 7.5}

    def test_callable_backed_gauge_refuses_merge(self):
        left = Registry()
        left.gauge("g", fn=lambda: 1.0)
        right = Registry()
        right.gauge("g").set(2.0)
        with pytest.raises(ValueError, match="callable-backed"):
            left.merge(right)


class TestSnapshotOrdering:
    def test_export_independent_of_registration_order(self):
        # The regression: identical instrument values registered in
        # opposite orders must serialize to byte-identical JSON.
        forward = Registry()
        backward = Registry()
        names = ["zz.last", "aa.first", "mm.middle"]
        for name in names:
            forward.counter(name).inc(1)
            forward.gauge(name + ".g").set(2.0)
            forward.histogram(name + ".h").observe(0.01)
        for name in reversed(names):
            backward.counter(name).inc(1)
            backward.gauge(name + ".g").set(2.0)
            backward.histogram(name + ".h").observe(0.01)
        assert export_bytes(forward) == export_bytes(backward)
        assert forward.snapshot() == backward.snapshot()
        assert list(forward.snapshot()["counters"]) == sorted(names)
