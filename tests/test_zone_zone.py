"""Tests for the Zone store and its invariants."""

import pytest

from repro.dnslib import A, CNAME, Name, NS, RRSet, RRType, SOA, TXT
from repro.zone import Zone, ZoneError, diff_snapshots


def make_zone() -> Zone:
    soa = SOA("ns1.example.com", "admin.example.com", 1, 7200, 900, 604800, 300)
    return Zone("example.com", soa)


class TestBasics:
    def test_apex_soa_present(self):
        zone = make_zone()
        assert zone.soa.serial == 1
        assert zone.get_rrset("example.com", RRType.SOA) is not None

    def test_put_and_get(self, a_rrset):
        zone = make_zone()
        zone.put_rrset(a_rrset("www.example.com", 300, "1.2.3.4"))
        rrset = zone.get_rrset("www.example.com", RRType.A)
        assert rrset is not None and len(rrset) == 1

    def test_put_outside_zone_rejected(self, a_rrset):
        zone = make_zone()
        with pytest.raises(ZoneError):
            zone.put_rrset(a_rrset("www.other.org", 300, "1.2.3.4"))

    def test_put_empty_rrset_rejected(self):
        zone = make_zone()
        with pytest.raises(ZoneError):
            zone.put_rrset(RRSet("www.example.com", RRType.A, 300, []))

    def test_stored_copy_is_isolated(self, a_rrset):
        zone = make_zone()
        original = a_rrset("www.example.com", 300, "1.2.3.4")
        zone.put_rrset(original)
        original.add(A("5.6.7.8"))
        assert len(zone.get_rrset("www.example.com", RRType.A)) == 1

    def test_has_name_with_empty_nonterminal(self, a_rrset):
        zone = make_zone()
        zone.put_rrset(a_rrset("a.b.example.com", 300, "1.2.3.4"))
        assert zone.has_name("b.example.com")  # empty non-terminal
        assert not zone.has_name("c.example.com")


class TestInvariants:
    def test_second_soa_rejected_off_apex(self):
        zone = make_zone()
        soa = SOA("x.", "y.", 9, 1, 1, 1, 1)
        with pytest.raises(ZoneError):
            zone.put_rrset(RRSet("sub.example.com", RRType.SOA, 60, [soa]))

    def test_cname_conflicts_with_existing_data(self, a_rrset):
        zone = make_zone()
        zone.put_rrset(a_rrset("www.example.com", 300, "1.2.3.4"))
        with pytest.raises(ZoneError):
            zone.put_rrset(RRSet("www.example.com", RRType.CNAME, 300,
                                 [CNAME("x.example.com")]))

    def test_data_conflicts_with_existing_cname(self, a_rrset):
        zone = make_zone()
        zone.put_rrset(RRSet("alias.example.com", RRType.CNAME, 300,
                             [CNAME("www.example.com")]))
        with pytest.raises(ZoneError):
            zone.put_rrset(a_rrset("alias.example.com", 300, "1.2.3.4"))

    def test_cannot_delete_apex_soa(self):
        zone = make_zone()
        with pytest.raises(ZoneError):
            zone.delete_rrset("example.com", RRType.SOA)


class TestSerialAndListeners:
    def test_serial_bumps_on_put(self, a_rrset):
        zone = make_zone()
        zone.put_rrset(a_rrset("www.example.com", 300, "1.2.3.4"))
        assert zone.serial == 2

    def test_identical_put_is_noop(self, a_rrset):
        zone = make_zone()
        rrset = a_rrset("www.example.com", 300, "1.2.3.4")
        zone.put_rrset(rrset)
        serial = zone.serial
        zone.put_rrset(rrset.copy())
        assert zone.serial == serial

    def test_listener_receives_old_and_new(self, a_rrset):
        zone = make_zone()
        zone.put_rrset(a_rrset("www.example.com", 300, "1.2.3.4"))
        seen = []
        zone.add_change_listener(lambda z, changes: seen.extend(changes))
        zone.put_rrset(a_rrset("www.example.com", 300, "9.9.9.9"))
        assert len(seen) == 1
        name, rrtype, old, new = seen[0]
        assert old.rdatas == (A("1.2.3.4"),)
        assert new.rdatas == (A("9.9.9.9"),)

    def test_bulk_update_single_bump_and_callback(self, a_rrset):
        zone = make_zone()
        calls = []
        zone.add_change_listener(lambda z, changes: calls.append(list(changes)))
        with zone.bulk_update():
            zone.put_rrset(a_rrset("a.example.com", 300, "1.1.1.1"))
            zone.put_rrset(a_rrset("b.example.com", 300, "2.2.2.2"))
        assert zone.serial == 2
        assert len(calls) == 1 and len(calls[0]) == 2

    def test_bulk_update_coalesces_delete_add(self, a_rrset):
        zone = make_zone()
        zone.put_rrset(a_rrset("www.example.com", 300, "1.2.3.4"))
        seen = []
        zone.add_change_listener(lambda z, changes: seen.append(list(changes)))
        with zone.bulk_update():
            zone.delete_rrset("www.example.com", RRType.A)
            zone.put_rrset(a_rrset("www.example.com", 300, "9.9.9.9"))
        assert len(seen) == 1 and len(seen[0]) == 1
        _, _, old, new = seen[0][0]
        assert old is not None and new is not None

    def test_bulk_update_nets_out_to_nothing(self, a_rrset):
        zone = make_zone()
        rrset = a_rrset("www.example.com", 300, "1.2.3.4")
        zone.put_rrset(rrset)
        serial = zone.serial
        seen = []
        zone.add_change_listener(lambda z, changes: seen.append(changes))
        with zone.bulk_update():
            zone.delete_rrset("www.example.com", RRType.A)
            zone.put_rrset(rrset.copy())
        assert not seen
        assert zone.serial == serial

    def test_no_bump_mode_and_set_serial(self, a_rrset):
        zone = make_zone()
        with zone.bulk_update(bump_serial=False):
            zone.put_rrset(a_rrset("www.example.com", 300, "1.2.3.4"))
        assert zone.serial == 1
        zone.set_serial(42)
        assert zone.serial == 42

    def test_remove_listener(self, a_rrset):
        zone = make_zone()
        seen = []
        listener = lambda z, c: seen.append(c)  # noqa: E731
        zone.add_change_listener(listener)
        zone.remove_change_listener(listener)
        zone.put_rrset(a_rrset("www.example.com", 300, "1.2.3.4"))
        assert not seen


class TestDelegationLookup:
    def test_find_delegation_below_cut(self, a_rrset):
        zone = make_zone()
        zone.put_rrset(RRSet("sub.example.com", RRType.NS, 300,
                             [NS("ns1.sub.example.com")]))
        found = zone.find_delegation(Name.from_text("www.sub.example.com"))
        assert found is not None
        assert found.name == Name.from_text("sub.example.com")

    def test_apex_ns_is_not_delegation(self):
        zone = make_zone()
        zone.put_rrset(RRSet("example.com", RRType.NS, 300,
                             [NS("ns1.example.com")]))
        assert zone.find_delegation(Name.from_text("www.example.com")) is None

    def test_outside_zone_returns_none(self):
        zone = make_zone()
        assert zone.find_delegation(Name.from_text("www.other.org")) is None


class TestHelpers:
    def test_replace_address_keeps_ttl(self, a_rrset):
        zone = make_zone()
        zone.put_rrset(a_rrset("www.example.com", 123, "1.2.3.4"))
        zone.replace_address("www.example.com", ["9.9.9.9"])
        rrset = zone.get_rrset("www.example.com", RRType.A)
        assert rrset.ttl == 123
        assert rrset.rdatas == (A("9.9.9.9"),)

    def test_delete_name_counts(self, a_rrset):
        zone = make_zone()
        zone.put_rrset(a_rrset("www.example.com", 60, "1.1.1.1"))
        zone.put_rrset(RRSet("www.example.com", RRType.TXT, 60, [TXT("x")]))
        assert zone.delete_name("www.example.com") == 2

    def test_diff_snapshots(self, a_rrset):
        zone = make_zone()
        zone.put_rrset(a_rrset("www.example.com", 60, "1.1.1.1"))
        before = zone.snapshot()
        zone.put_rrset(a_rrset("www.example.com", 60, "2.2.2.2"))
        zone.put_rrset(a_rrset("new.example.com", 60, "3.3.3.3"))
        changes = diff_snapshots(before, zone.snapshot())
        keys = {(name.to_text(), rrtype) for name, rrtype, _, _ in changes}
        assert ("www.example.com.", RRType.A) in keys
        assert ("new.example.com.", RRType.A) in keys
        # SOA serial changed too.
        assert ("example.com.", RRType.SOA) in keys
