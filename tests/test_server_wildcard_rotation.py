"""Tests for wildcard synthesis, answer rotation, and adaptive policy
binding — the operational authoritative-server features."""

import pytest

from repro.core import AdaptiveBudgetPolicy, attach_dnscup
from repro.dnslib import A, Message, Name, Rcode, RRType, make_query
from repro.server import AuthoritativeServer
from repro.zone import load_zone

WILDCARD_ZONE = """\
$ORIGIN pool.net.
$TTL 300
@        IN SOA ns1 admin 1 7200 900 604800 300
@        IN NS  ns1
ns1      IN A   10.1.0.1
*        IN A   10.6.0.1
host     IN A   10.6.0.99
*.deep   IN A   10.6.1.1
exists.deep IN TXT "occupied"
www      IN A   10.7.0.1
www      IN A   10.7.0.2
www      IN A   10.7.0.3
"""


@pytest.fixture
def server(make_host):
    return AuthoritativeServer(make_host("10.1.0.1"),
                               [load_zone(WILDCARD_ZONE)])


def ask(server, simulator, make_host, name, rrtype=RRType.A, client_index=[0]):
    client_index[0] += 1
    client = make_host(f"10.9.1.{client_index[0]}").socket()
    query = make_query(name, rrtype, recursion_desired=False)
    responses = []
    client.request(query.to_wire(), ("10.1.0.1", 53), query.id,
                   lambda p, s: responses.append(p))
    simulator.run()
    return Message.from_wire(responses[0])


class TestWildcards:
    def test_wildcard_synthesizes_answer(self, server, simulator, make_host):
        response = ask(server, simulator, make_host, "anything.pool.net")
        assert response.rcode == Rcode.NOERROR
        assert response.answer[0].name == Name.from_text("anything.pool.net")
        assert response.answer[0].rdata == A("10.6.0.1")

    def test_existing_name_beats_wildcard(self, server, simulator, make_host):
        response = ask(server, simulator, make_host, "host.pool.net")
        assert response.answer[0].rdata == A("10.6.0.99")

    def test_deeper_wildcard_wins(self, server, simulator, make_host):
        response = ask(server, simulator, make_host, "x.deep.pool.net")
        assert response.answer[0].rdata == A("10.6.1.1")

    def test_existing_name_wrong_type_is_nodata_not_wildcard(
            self, server, simulator, make_host):
        """A name that exists (with another type) must not fall back to
        a wildcard: that's NODATA per RFC 1034."""
        response = ask(server, simulator, make_host,
                       "exists.deep.pool.net", RRType.A)
        assert response.rcode == Rcode.NOERROR
        assert not response.answer

    def test_wildcard_for_multilabel_names(self, server, simulator,
                                           make_host):
        response = ask(server, simulator, make_host, "a.b.c.pool.net")
        assert response.answer[0].rdata == A("10.6.0.1")
        assert response.answer[0].name == Name.from_text("a.b.c.pool.net")


class TestRotation:
    def test_rotation_disabled_by_default(self, server, simulator, make_host):
        first = ask(server, simulator, make_host, "www.pool.net")
        second = ask(server, simulator, make_host, "www.pool.net")
        assert [r.rdata for r in first.answer] == \
            [r.rdata for r in second.answer]

    def test_rotation_cycles_first_answer(self, make_host, simulator):
        server = AuthoritativeServer(make_host("10.1.0.2"),
                                     [load_zone(WILDCARD_ZONE)],
                                     rotate_answers=True)

        def first_address(index):
            client = make_host(f"10.9.2.{index}").socket()
            query = make_query("www.pool.net", RRType.A,
                               recursion_desired=False)
            responses = []
            client.request(query.to_wire(), ("10.1.0.2", 53), query.id,
                           lambda p, s: responses.append(p))
            simulator.run()
            return Message.from_wire(responses[0]).answer[0].rdata.address

        firsts = [first_address(i) for i in range(1, 7)]
        # All three addresses lead in turn, then the cycle repeats.
        assert firsts[:3] == ["10.7.0.1", "10.7.0.2", "10.7.0.3"]
        assert firsts[3:] == firsts[:3]

    def test_rotation_preserves_full_set(self, make_host, simulator):
        server = AuthoritativeServer(make_host("10.1.0.3"),
                                     [load_zone(WILDCARD_ZONE)],
                                     rotate_answers=True)
        client = make_host("10.9.3.1").socket()
        query = make_query("www.pool.net", RRType.A, recursion_desired=False)
        responses = []
        client.request(query.to_wire(), ("10.1.0.3", 53), query.id,
                       lambda p, s: responses.append(p))
        simulator.run()
        answer = Message.from_wire(responses[0]).answer
        assert {r.rdata.address for r in answer} == \
            {"10.7.0.1", "10.7.0.2", "10.7.0.3"}


class TestAdaptivePolicyBinding:
    def test_middleware_binds_occupancy(self, make_host):
        from repro.core import DNScupConfig
        server = AuthoritativeServer(make_host("10.1.0.4"),
                                     [load_zone(WILDCARD_ZONE)])
        policy = AdaptiveBudgetPolicy(base_threshold=0.001)
        assert policy.occupancy is None
        middleware = attach_dnscup(server, policy=policy,
                                   config=DNScupConfig(lease_capacity=10))
        assert policy.occupancy is not None
        assert policy.occupancy.__self__ is middleware.listening
        assert policy.occupancy() == 0.0

    def test_unbound_adaptive_policy_still_decides(self):
        policy = AdaptiveBudgetPolicy(base_threshold=0.0)
        decision = policy.decide(Name.from_text("a.b"), RRType.A, 1.0,
                                 100.0, 0.0)
        assert decision.granted
