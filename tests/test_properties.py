"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    LeaseInstance,
    LeaseTable,
    communication_constrained,
    communication_constrained_floor,
    lease_probability,
    renewal_rate,
    storage_constrained,
    tradeoff_ratio,
)
from repro.dnslib import (
    A,
    Message,
    Name,
    Question,
    Rcode,
    ResourceRecord,
    RRType,
    WireReader,
    WireWriter,
    make_query,
    make_response,
)
from repro.zone import serial_add, serial_gt

# -- strategies ----------------------------------------------------------------

label = st.text(alphabet=string.ascii_letters + string.digits + "-",
                min_size=1, max_size=12).filter(lambda s: s.strip("-"))
names = st.lists(label, min_size=0, max_size=5).map(Name)
ipv4 = st.tuples(*(st.integers(1, 254),) * 4).map(
    lambda t: ".".join(map(str, t)))
ttls = st.integers(min_value=0, max_value=0x7FFFFFFF)
serials = st.integers(min_value=0, max_value=0xFFFFFFFF)


# -- names -------------------------------------------------------------------


class TestNameProperties:
    @given(names)
    def test_text_roundtrip(self, name):
        assert Name.from_text(name.to_text()) == name

    @given(names)
    def test_subdomain_of_self_and_root(self, name):
        assert name.is_subdomain_of(name)
        assert name.is_subdomain_of(Name.root())

    @given(names, label)
    def test_child_parent_inverse(self, name, lab):
        assert name.child(lab).parent() == name

    @given(names, names)
    def test_equality_consistent_with_hash(self, a, b):
        if a == b:
            assert hash(a) == hash(b)


# -- wire format -----------------------------------------------------------------


class TestWireProperties:
    @given(st.lists(names, min_size=1, max_size=8))
    def test_name_sequence_roundtrip_with_compression(self, name_list):
        writer = WireWriter()
        for name in name_list:
            writer.write_name(name)
        reader = WireReader(writer.getvalue())
        for name in name_list:
            assert reader.read_name() == name

    @given(st.lists(names, min_size=1, max_size=8))
    def test_compression_never_larger(self, name_list):
        compressed = WireWriter(compress=True)
        plain = WireWriter(compress=False)
        for name in name_list:
            compressed.write_name(name)
            plain.write_name(name)
        assert len(compressed.getvalue()) <= len(plain.getvalue())

    @given(names, ipv4, ttls)
    def test_record_roundtrip(self, name, address, ttl):
        record = ResourceRecord(name, RRType.A, ttl, A(address))
        writer = WireWriter()
        record.to_wire(writer)
        assert ResourceRecord.from_wire(WireReader(writer.getvalue())) == record

    @given(names, st.one_of(st.none(), st.integers(0, 0xFFFF)),
           st.booleans())
    def test_message_roundtrip(self, name, rrc, rd):
        query = make_query(name, RRType.A, recursion_desired=rd, rrc=rrc)
        decoded = Message.from_wire(query.to_wire())
        assert decoded.question[0].name == name
        assert decoded.question[0].rrc == rrc
        assert decoded.recursion_desired == rd

    @given(names, st.integers(0, 0xFFFF), st.integers(1, 0xFFFF),
           st.lists(ipv4, min_size=1, max_size=5, unique=True))
    def test_response_with_llt_roundtrip(self, name, rrc, llt, addresses):
        query = make_query(name, RRType.A, rrc=rrc)
        response = make_response(query, llt=llt)
        for address in addresses:
            response.answer.append(
                ResourceRecord(name, RRType.A, 60, A(address)))
        decoded = Message.from_wire(response.to_wire())
        assert decoded.llt == llt
        assert [r.rdata.address for r in decoded.answer] == addresses


# -- serial arithmetic ---------------------------------------------------------------


class TestSerialProperties:
    @given(serials, st.integers(1, (1 << 31) - 1))
    def test_add_makes_greater(self, serial, increment):
        assert serial_gt(serial_add(serial, increment), serial)

    @given(serials, serials)
    def test_antisymmetric(self, a, b):
        assert not (serial_gt(a, b) and serial_gt(b, a))

    @given(serials)
    def test_irreflexive(self, a):
        assert not serial_gt(a, a)


# -- analytical model ---------------------------------------------------------------------

rates = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False)
lengths = st.floats(min_value=0.0, max_value=1e7, allow_nan=False)


class TestAnalyticalProperties:
    @given(lengths, rates)
    def test_probability_in_unit_interval(self, t, lam):
        assert 0.0 <= lease_probability(t, lam) < 1.0

    @given(lengths, rates)
    def test_renewal_rate_bounded_by_polling(self, t, lam):
        assert 0.0 <= renewal_rate(t, lam) <= lam + 1e-12

    @given(st.floats(0.0, 1e4), st.floats(0.1, 1e5), rates)
    def test_tradeoff_is_lambda(self, t1, dt, lam):
        # Wide tolerance: for t ≫ 1/λ both ΔP and ΔM suffer catastrophic
        # cancellation, so only the analytical identity (not double
        # precision) is exact.
        assert tradeoff_ratio(t1, t1 + dt, lam) == pytest.approx(lam,
                                                                 rel=1e-3)

    @given(lengths, lengths, rates)
    def test_probability_monotone(self, t1, t2, lam):
        low, high = sorted((t1, t2))
        assert lease_probability(low, lam) <= lease_probability(high, lam)


# -- optimizers ------------------------------------------------------------------------------

instances_strategy = st.lists(
    st.tuples(st.integers(0, 10_000), rates,
              st.floats(min_value=1.0, max_value=1e6)),
    min_size=1, max_size=30, unique_by=lambda t: t[0],
).map(lambda rows: [LeaseInstance(f"r{i}", "c", lam, max_lease)
                    for i, lam, max_lease in rows])


class TestOptimizerProperties:
    @given(instances_strategy, st.floats(0.0, 30.0))
    @settings(max_examples=50, deadline=None)
    def test_storage_budget_never_exceeded(self, instances, budget):
        assignment = storage_constrained(instances, budget)
        used = sum(inst.storage_cost for inst in instances
                   if (inst.record, inst.cache) in assignment.granted)
        assert used <= budget + 1e-9

    @given(instances_strategy, st.floats(0.0, 30.0))
    @settings(max_examples=50, deadline=None)
    def test_granted_rates_dominate_denied(self, instances, budget):
        """Greedy invariant: every granted pair has query rate >= every
        denied-but-affordable pair's rate."""
        assignment = storage_constrained(instances, budget)
        granted = [i for i in instances
                   if (i.record, i.cache) in assignment.granted]
        if not granted:
            return
        threshold = min(i.query_rate for i in granted)
        used = sum(i.storage_cost for i in granted)
        for inst in instances:
            if (inst.record, inst.cache) in assignment.granted:
                continue
            if inst.query_rate > threshold:
                # It must have been unaffordable at its turn in the
                # greedy order, so it alone must blow the budget given
                # everything hotter.
                hotter_cost = sum(i.storage_cost for i in instances
                                  if i.query_rate > inst.query_rate
                                  and i.storage_cost > 0 and i.query_rate > 0)
                assert hotter_cost + inst.storage_cost > budget - 1e-9

    @given(instances_strategy, st.floats(1.0, 3.0))
    @settings(max_examples=50, deadline=None)
    def test_communication_budget_met(self, instances, slack):
        floor = communication_constrained_floor(instances)
        polling = sum(i.query_rate for i in instances)
        budget = floor + (polling - floor) * (slack - 1.0) / 2.0
        assignment = communication_constrained(instances, budget)
        assert assignment.operating_point().message_rate <= budget + 1e-9


# -- lease table -----------------------------------------------------------------------------

lease_ops = st.lists(
    st.tuples(st.sampled_from(["grant", "revoke", "sweep"]),
              st.integers(0, 4),      # cache id
              st.integers(0, 4),      # record id
              st.floats(0.0, 1000.0),  # now
              st.floats(1.0, 500.0)),  # length
    max_size=60)


class TestLeaseTableProperties:
    @given(lease_ops)
    @settings(max_examples=60, deadline=None)
    def test_active_count_matches_enumeration(self, operations):
        table = LeaseTable()
        for op, cache_id, record_id, now, length in operations:
            cache = (f"10.0.0.{cache_id}", 53)
            name = f"r{record_id}.x.com"
            if op == "grant":
                table.grant(cache, name, RRType.A, now, length)
            elif op == "revoke":
                table.revoke(cache, name, RRType.A)
            else:
                table.sweep(now)
        assert len(table) == sum(1 for _ in table)

    @given(lease_ops)
    @settings(max_examples=60, deadline=None)
    def test_holders_always_valid(self, operations):
        table = LeaseTable()
        latest = 0.0
        for op, cache_id, record_id, now, length in operations:
            latest = max(latest, now)
            if op == "grant":
                table.grant((f"10.0.0.{cache_id}", 53),
                            f"r{record_id}.x.com", RRType.A, now, length)
        for record_id in range(5):
            for lease in table.holders(f"r{record_id}.x.com", RRType.A,
                                       latest):
                assert lease.is_valid(latest)
