"""Tests for master-file parsing and serialization."""

import pytest

from repro.dnslib import A, Name, RRType
from repro.zone import (
    MasterFileError,
    ZoneError,
    dump_zone,
    load_zone,
    parse_records,
    parse_ttl,
)
from tests.conftest import EXAMPLE_ZONE_TEXT


class TestParseTtl:
    @pytest.mark.parametrize("text,expected", [
        ("300", 300), ("5m", 300), ("1h", 3600), ("1h30m", 5400),
        ("2d", 172800), ("1w", 604800), ("0", 0),
    ])
    def test_valid(self, text, expected):
        assert parse_ttl(text) == expected

    @pytest.mark.parametrize("bad", ["", "m5", "5x", "1h30"])
    def test_invalid(self, bad):
        with pytest.raises(MasterFileError):
            parse_ttl(bad)


class TestParseRecords:
    def test_counts_and_types(self):
        records = parse_records(EXAMPLE_ZONE_TEXT)
        assert len(records) == 13
        assert sum(1 for r in records if r.rrtype == RRType.A) == 6

    def test_origin_applied_to_relative_names(self):
        records = parse_records("$ORIGIN x.org.\nwww 60 IN A 1.2.3.4\n")
        assert records[0].name == Name.from_text("www.x.org")

    def test_at_sign_is_origin(self):
        records = parse_records("$ORIGIN x.org.\n@ 60 IN A 1.2.3.4\n")
        assert records[0].name == Name.from_text("x.org")

    def test_absolute_name_ignores_origin(self):
        records = parse_records("$ORIGIN x.org.\nwww.y.net. 60 IN A 1.2.3.4\n")
        assert records[0].name == Name.from_text("www.y.net")

    def test_default_ttl_from_directive(self):
        records = parse_records("$ORIGIN x.org.\n$TTL 120\nwww IN A 1.2.3.4\n")
        assert records[0].ttl == 120

    def test_no_ttl_anywhere_fails(self):
        with pytest.raises(MasterFileError):
            parse_records("$ORIGIN x.org.\nwww IN A 1.2.3.4\n")

    def test_owner_inheritance_by_leading_whitespace(self):
        text = "$ORIGIN x.org.\n$TTL 60\nwww IN A 1.1.1.1\n    IN A 2.2.2.2\n"
        records = parse_records(text)
        assert records[1].name == records[0].name

    def test_inheritance_without_previous_owner_fails(self):
        with pytest.raises(MasterFileError):
            parse_records("    60 IN A 1.2.3.4\n")

    def test_parenthesized_soa(self):
        text = ("$ORIGIN x.org.\n@ 3600 IN SOA ns admin (\n"
                "    1 ; serial\n    7200\n    900\n    604800\n    300 )\n")
        records = parse_records(text)
        assert records[0].rrtype == RRType.SOA
        assert records[0].rdata.serial == 1

    def test_unbalanced_paren_fails(self):
        with pytest.raises(MasterFileError):
            parse_records("@ 60 IN SOA ns admin ( 1 2 3 4 5\n")

    def test_comments_stripped(self):
        records = parse_records(
            "$ORIGIN x.org.\nwww 60 IN A 1.2.3.4 ; comment here\n")
        assert len(records) == 1

    def test_quoted_txt_with_spaces(self):
        records = parse_records('$ORIGIN x.org.\nt 60 IN TXT "hello world"\n')
        assert records[0].rdata.strings == (b"hello world",)

    def test_unknown_type_fails(self):
        with pytest.raises(MasterFileError):
            parse_records("$ORIGIN x.\nw 60 IN BOGUS data\n")

    def test_bad_rdata_reports_line(self):
        with pytest.raises(MasterFileError) as info:
            parse_records("$ORIGIN x.\nw 60 IN A not-an-ip\n")
        assert info.value.line == 2

    def test_class_before_ttl_order(self):
        records = parse_records("$ORIGIN x.org.\nwww IN 60 A 1.2.3.4\n")
        assert records[0].ttl == 60


class TestLoadZone:
    def test_loads_example(self, example_zone):
        assert example_zone.origin == Name.from_text("example.com")
        assert example_zone.serial == 1  # bulk load doesn't churn the serial

    def test_www_has_two_addresses(self, example_zone):
        rrset = example_zone.get_rrset("www.example.com", RRType.A)
        assert len(rrset) == 2

    def test_zone_without_soa_fails(self):
        with pytest.raises(ZoneError):
            load_zone("$ORIGIN x.org.\nwww 60 IN A 1.2.3.4\n")

    def test_zone_with_two_soas_fails(self):
        text = ("$ORIGIN x.org.\n@ 60 IN SOA a b 1 2 3 4 5\n"
                "@ 60 IN SOA c d 1 2 3 4 5\n")
        with pytest.raises(ZoneError):
            load_zone(text)


class TestDumpZone:
    def test_roundtrip_preserves_content(self, example_zone):
        text = dump_zone(example_zone)
        reloaded = load_zone(text)
        from repro.zone import zones_equal
        assert zones_equal(example_zone, reloaded, ignore_soa=False)

    def test_dump_starts_with_origin(self, example_zone):
        assert dump_zone(example_zone).startswith("$ORIGIN example.com.")
