"""Tests for EDNS0 (RFC 6891): OPT record, payload negotiation."""

import pytest

from repro.dnslib import (
    A,
    MAX_UDP_PAYLOAD,
    Message,
    Name,
    Rcode,
    RRType,
    make_query,
)
from repro.net import Host, Network, Simulator
from repro.server import AuthoritativeServer, RecursiveResolver
from repro.server.authoritative import EDNS_SERVER_PAYLOAD
from repro.zone import load_zone
from tests.test_tcp_fallback import FAT_ZONE, ROOT_TEXT


class TestOptWireFormat:
    def test_roundtrip(self):
        query = make_query("www.example.com", RRType.A)
        query.edns_payload_size = 4096
        decoded = Message.from_wire(query.to_wire())
        assert decoded.edns_payload_size == 4096
        assert decoded.additional == []  # OPT is not a visible record

    def test_absent_by_default(self):
        query = make_query("www.example.com", RRType.A)
        decoded = Message.from_wire(query.to_wire())
        assert decoded.edns_payload_size is None

    def test_opt_costs_eleven_bytes(self):
        query = make_query("www.example.com", RRType.A)
        plain = query.wire_size()
        query.edns_payload_size = 4096
        assert query.wire_size() == plain + 11

    def test_opt_coexists_with_cu_fields(self):
        query = make_query("www.example.com", RRType.A, rrc=9)
        query.edns_payload_size = 1232
        decoded = Message.from_wire(query.to_wire())
        assert decoded.question[0].rrc == 9
        assert decoded.edns_payload_size == 1232

    def test_opt_with_real_additional_records(self):
        from repro.dnslib import ResourceRecord, make_response
        query = make_query("www.example.com", RRType.A)
        response = make_response(query)
        response.additional.append(
            ResourceRecord("glue.example.com", RRType.A, 60, A("1.2.3.4")))
        response.edns_payload_size = 4096
        decoded = Message.from_wire(response.to_wire())
        assert len(decoded.additional) == 1
        assert decoded.edns_payload_size == 4096


@pytest.fixture
def edns_world():
    simulator = Simulator()
    network = Network(simulator, seed=1, udp_payload_limit=65507)
    root = AuthoritativeServer(Host(network, "198.41.0.4"),
                               [load_zone(ROOT_TEXT, origin=Name.root())])
    auth = AuthoritativeServer(Host(network, "10.1.0.1"),
                               [load_zone(FAT_ZONE)])
    return simulator, network, auth


class TestServerNegotiation:
    def ask(self, simulator, network, payload_size):
        client = Host(network, "10.9.0.1").socket()
        query = make_query("big.fat.com", RRType.A, recursion_desired=False)
        query.edns_payload_size = payload_size
        responses = []
        client.request(query.to_wire(), ("10.1.0.1", 53), query.id,
                       lambda p, s: responses.append(p))
        simulator.run()
        return Message.from_wire(responses[0])

    def test_large_advertisement_avoids_truncation(self, edns_world):
        simulator, network, auth = edns_world
        response = self.ask(simulator, network, 4096)
        assert not response.truncated
        assert len(response.answer) == 40
        assert response.edns_payload_size == EDNS_SERVER_PAYLOAD
        assert auth.stats.truncated == 0

    def test_classic_client_still_truncated(self, edns_world):
        simulator, network, auth = edns_world
        response = self.ask(simulator, network, None)
        assert response.truncated
        assert auth.stats.truncated == 1

    def test_small_advertisement_respected(self, edns_world):
        """An advertised size below the response still truncates, but
        never below the 512 floor."""
        simulator, network, auth = edns_world
        response = self.ask(simulator, network, 512)
        assert response.truncated

    def test_server_caps_at_own_limit(self, edns_world):
        simulator, network, auth = edns_world
        response = self.ask(simulator, network, 65000)
        assert response.edns_payload_size == EDNS_SERVER_PAYLOAD


class TestResolverEdns:
    def test_edns_resolver_skips_tcp_fallback(self, edns_world):
        simulator, network, _ = edns_world
        resolver = RecursiveResolver(Host(network, "10.2.0.1"),
                                     [("198.41.0.4", 53)],
                                     edns_payload=4096)
        results = []
        resolver.resolve("big.fat.com", RRType.A,
                         lambda recs, rc: results.append((recs, rc)))
        simulator.run()
        records, rcode = results[0]
        assert rcode == Rcode.NOERROR
        assert len([r for r in records if r.rrtype == RRType.A]) == 40
        assert resolver.stats.tcp_fallbacks == 0
        assert network.stats.stream_messages == 0

    def test_classic_resolver_uses_tcp_fallback(self, edns_world):
        simulator, network, _ = edns_world
        resolver = RecursiveResolver(Host(network, "10.2.0.2"),
                                     [("198.41.0.4", 53)])
        results = []
        resolver.resolve("big.fat.com", RRType.A,
                         lambda recs, rc: results.append((recs, rc)))
        simulator.run()
        assert results[0][1] == Rcode.NOERROR
        assert resolver.stats.tcp_fallbacks == 1

    def test_tiny_edns_payload_rejected(self, edns_world):
        simulator, network, _ = edns_world
        with pytest.raises(ValueError):
            RecursiveResolver(Host(network, "10.2.0.3"),
                              [("198.41.0.4", 53)], edns_payload=128)
