"""Tests for the assembled DNScup middleware on a real server."""

import pytest

from repro.core import (
    DNScup,
    DNScupConfig,
    DynamicLeasePolicy,
    FixedLeasePolicy,
    attach_dnscup,
)
from repro.dnslib import (
    A,
    Message,
    Name,
    Rcode,
    RRType,
    make_query,
)
from repro.net import RetryPolicy
from repro.server import AuthoritativeServer, RecursiveResolver, ResolverCache
from repro.zone import load_zone
from tests.conftest import EXAMPLE_ZONE_TEXT

ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.                IN SOA a.root. admin. 1 7200 900 604800 300
.                IN NS a.root.
a.root.          IN A  198.41.0.4
example.com.     IN NS ns1.example.com.
ns1.example.com. IN A  10.1.0.1
"""


@pytest.fixture
def world(make_host, simulator):
    root = AuthoritativeServer(
        make_host("198.41.0.4"),
        [load_zone(ROOT_TEXT, origin=Name.root())])
    zone = load_zone(EXAMPLE_ZONE_TEXT)
    auth = AuthoritativeServer(make_host("10.1.0.1"), [zone])
    middleware = attach_dnscup(auth, policy=DynamicLeasePolicy(0.0))
    resolver = RecursiveResolver(make_host("10.2.0.1"),
                                 [("198.41.0.4", 53)],
                                 cache=ResolverCache(), dnscup_enabled=True)
    return zone, auth, middleware, resolver, simulator


def resolve(resolver, simulator, name):
    results = []
    resolver.resolve(name, RRType.A, lambda recs, rc: results.append((recs, rc)))
    simulator.run()
    return results[0]


class TestAttachment:
    def test_attach_idempotent(self, world):
        _, auth, middleware, _, _ = world
        hooks_before = len(auth.query_hooks)
        middleware.attach()
        assert len(auth.query_hooks) == hooks_before

    def test_detach_removes_hooks(self, world):
        _, auth, middleware, _, _ = world
        middleware.detach()
        assert middleware.listening.on_query not in auth.query_hooks
        middleware.detach()  # idempotent

    def test_plain_clients_unaffected(self, world, make_host):
        _, _, _, _, simulator = world
        client = make_host("10.9.0.1").socket()
        query = make_query("www.example.com", RRType.A,
                           recursion_desired=False)
        responses = []
        client.request(query.to_wire(), ("10.1.0.1", 53), query.id,
                       lambda p, s: responses.append(p))
        simulator.run()
        response = Message.from_wire(responses[0])
        assert response.rcode == Rcode.NOERROR
        assert response.llt is None
        assert not response.cache_update_aware


class TestEndToEndConsistency:
    def test_lease_then_push_keeps_cache_fresh(self, world):
        zone, _, middleware, resolver, simulator = world
        records, rcode = resolve(resolver, simulator, "www.example.com")
        assert rcode == Rcode.NOERROR
        assert len(middleware.table) == 1
        zone.replace_address("www.example.com", ["172.16.9.9"])
        simulator.run()
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert entry.rrset.rdatas == (A("172.16.9.9"),)
        assert middleware.notification.ack_ratio() == 1.0

    def test_consistency_window_is_one_rtt(self, world):
        zone, _, middleware, resolver, simulator = world
        resolve(resolver, simulator, "www.example.com")
        change_at = simulator.now
        zone.replace_address("www.example.com", ["172.16.9.9"])
        simulator.run()
        rtts = [o.rtt for o in middleware.notification.outcomes if o.rtt]
        assert rtts and max(rtts) < 1.0  # LAN-scale, not TTL-scale

    def test_deletion_propagates_to_cache(self, world):
        zone, _, middleware, resolver, simulator = world
        resolve(resolver, simulator, "www.example.com")
        zone.delete_rrset("www.example.com", RRType.A)
        simulator.run()
        entry = resolver.cache.peek("www.example.com", RRType.A)
        # The cache applied an empty update: entry rewritten with no rdatas.
        assert entry is None or len(entry.rrset) == 0

    def test_no_lease_no_push(self, world, make_host):
        """A resolver without DNScup falls back to TTL (weak) behaviour."""
        zone, _, middleware, _, simulator = world
        plain = RecursiveResolver(make_host("10.2.0.9"),
                                  [("198.41.0.4", 53)],
                                  dnscup_enabled=False)
        resolve(plain, simulator, "www.example.com")
        assert len(middleware.table) == 0
        zone.replace_address("www.example.com", ["172.16.9.9"])
        simulator.run()
        entry = plain.cache.peek("www.example.com", RRType.A)
        assert entry.rrset.rdatas != (A("172.16.9.9"),)  # stale until TTL

    def test_summary_counters(self, world):
        zone, _, middleware, resolver, simulator = world
        resolve(resolver, simulator, "www.example.com")
        zone.replace_address("www.example.com", ["172.16.9.9"])
        simulator.run()
        summary = middleware.summary()
        assert summary["grants"] == 1.0
        assert summary["changes_detected"] == 1.0
        assert summary["notifications_sent"] == 1.0
        assert summary["acks_received"] == 1.0


class TestTrackFileLifecycle:
    def test_save_and_reload_preserves_obligations(self, world, tmp_path):
        zone, auth, middleware, resolver, simulator = world
        resolve(resolver, simulator, "www.example.com")
        path = str(tmp_path / "track.db")
        assert middleware.save_track_file(path) == 1
        # A "restarted" middleware adopts the saved leases.
        middleware.detach()
        fresh = DNScup(auth, policy=DynamicLeasePolicy(0.0)).attach()
        fresh.load_track_file(path)
        assert len(fresh.table) == 1
        zone.replace_address("www.example.com", ["172.16.9.9"])
        simulator.run()
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert entry.rrset.rdatas == (A("172.16.9.9"),)

    def test_expired_leases_not_reloaded(self, world, tmp_path):
        zone, auth, middleware, resolver, simulator = world
        middleware.table.grant(("10.2.0.1", 53), "www.example.com",
                               RRType.A, now=0.0, length=1.0)
        path = str(tmp_path / "track.db")
        middleware.save_track_file(path)
        simulator.run_until(100.0)
        fresh = DNScup(auth, policy=DynamicLeasePolicy(0.0))
        fresh.load_track_file(path)
        assert len(fresh.table) == 0


class TestPolicyVariants:
    def test_fixed_policy_grants_fixed_llt(self, world, make_host):
        zone, auth, middleware, _, simulator = world
        middleware.detach()
        fixed = attach_dnscup(auth, policy=FixedLeasePolicy(444.0))
        resolver = RecursiveResolver(make_host("10.2.0.7"),
                                     [("198.41.0.4", 53)],
                                     dnscup_enabled=True)
        resolve(resolver, simulator, "www.example.com")
        lease = next(iter(fixed.table))
        assert lease.length == 444.0

    def test_capacity_limits_grants(self, world, make_host):
        zone, auth, middleware, _, simulator = world
        middleware.detach()
        limited = attach_dnscup(
            auth, policy=DynamicLeasePolicy(0.0),
            config=DNScupConfig(lease_capacity=1))
        resolver = RecursiveResolver(make_host("10.2.0.8"),
                                     [("198.41.0.4", 53)],
                                     dnscup_enabled=True)
        resolve(resolver, simulator, "www.example.com")
        resolve(resolver, simulator, "mail.example.com")
        assert len(limited.table) == 1
        assert limited.listening.stats.table_full == 1
