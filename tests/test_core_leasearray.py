"""The columnar lease table against the dict-backed reference.

:class:`repro.core.ArrayLeaseTable` is a drop-in behind the
:class:`repro.core.LeaseTable` API; these tests hold the two
implementations to *observable equivalence* — same grant/renew/expire
transitions, same capacity refusals, same stats, same query results —
on both hand-written scenarios and Hypothesis-generated operation
sequences.  The one declared difference (returned leases are snapshots,
not live views) gets its own regression test.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ArrayLeaseTable, LeaseTable, save_track_file
from repro.core.middleware import DNScupConfig
from repro.dnslib import Name, RRType

CACHE_A = ("10.2.0.1", 53)
CACHE_B = ("10.2.0.2", 53)
CACHES = [(f"10.2.0.{i}", 53) for i in range(1, 5)]
NAMES = ["w.x.com", "y.x.com", "z.x.com"]


@pytest.fixture
def table():
    return ArrayLeaseTable()


class TestDropInBehaviour:
    """The LeaseTable unit contract, replayed on the array table."""

    def test_grant_and_holders(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=100.0)
        holders = table.holders("w.x.com", RRType.A, now=50.0)
        assert [h.cache for h in holders] == [CACHE_A]

    def test_expired_not_in_holders(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=100.0)
        assert table.holders("w.x.com", RRType.A, now=100.0) == []

    def test_renewal_updates_in_place(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=100.0)
        table.grant(CACHE_A, "w.x.com", RRType.A, now=50.0, length=100.0)
        assert len(table) == 1
        assert table.stats.renewals == 1
        assert table.get(CACHE_A, "w.x.com", RRType.A).expires_at == 150.0
        assert table.column_stats()["slots"] == 1

    def test_regrant_after_expiry_counts_as_grant(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=10.0)
        table.grant(CACHE_A, "w.x.com", RRType.A, now=20.0, length=10.0)
        assert table.stats.grants == 2
        assert table.stats.renewals == 0
        assert table.stats.expirations == 1
        assert len(table) == 1

    def test_revoke_and_free_list_reuse(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=100.0)
        table.grant(CACHE_B, "y.x.com", RRType.A, now=0.0, length=100.0)
        assert table.revoke(CACHE_A, "w.x.com", RRType.A)
        assert not table.revoke(CACHE_A, "w.x.com", RRType.A)
        assert table.column_stats()["free"] == 1
        # The freed slot is reused: the columns do not grow.
        table.grant(CACHE_A, "z.x.com", RRType.A, now=1.0, length=50.0)
        assert table.column_stats() == {
            "slots": 2, "free": 0, "active": 2,
            "records_interned": 3, "caches_interned": 2}

    def test_capacity_refusal_after_sweep(self):
        table = ArrayLeaseTable(capacity=1)
        assert table.grant(CACHE_A, "w.x.com", RRType.A, 0.0, 10.0)
        # Full, and the incumbent is still valid: refused.
        assert table.grant(CACHE_B, "w.x.com", RRType.A, 5.0, 10.0) is None
        # Once the incumbent expires, the emergency sweep frees the slot.
        assert table.grant(CACHE_B, "w.x.com", RRType.A, 10.0, 10.0)
        assert len(table) == 1

    def test_leases_of_and_tracked_records(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=100.0)
        table.grant(CACHE_A, "y.x.com", RRType.A, now=0.0, length=10.0)
        table.grant(CACHE_B, "w.x.com", RRType.A, now=0.0, length=100.0)
        held = table.leases_of(CACHE_A, now=50.0)
        assert [lease.name for lease in held] == [Name.from_text("w.x.com")]
        assert set(table.tracked_records()) == {
            (Name.from_text("w.x.com"), RRType.A),
            (Name.from_text("y.x.com"), RRType.A)}
        assert table.active_count(now=50.0) == 2
        assert table.active_count() == 3

    def test_no_duplicate_postings_after_slot_reuse(self, table):
        """A slot swept and re-granted to the same key must appear once.

        _release leaves the slot in the posting lists; re-allocating it
        to the same (record, cache) pair appends it again, and both
        entries pass the occupancy check.  holders()/leases_of() must
        still report the lease exactly once (regression: duplicate
        CACHE-UPDATE notifications from the array backend).
        """
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=10.0)
        assert table.sweep(now=20.0) == 1
        table.grant(CACHE_A, "w.x.com", RRType.A, now=20.0, length=10.0)
        holders = table.holders("w.x.com", RRType.A, now=25.0)
        assert [h.cache for h in holders] == [CACHE_A]
        held = table.leases_of(CACHE_A, now=25.0)
        assert [lease.name for lease in held] == [Name.from_text("w.x.com")]
        assert table.column_stats()["slots"] == 1

    def test_sweep_removes_expired(self, table):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=0.0, length=10.0)
        table.grant(CACHE_B, "w.x.com", RRType.A, now=0.0, length=100.0)
        assert table.sweep(now=50.0) == 1
        assert len(table) == 1
        assert table.stats.expirations == 1

    def test_snapshot_not_live_view(self, table):
        first = table.grant(CACHE_A, "w.x.com", RRType.A, 0.0, 10.0)
        table.grant(CACHE_A, "w.x.com", RRType.A, 5.0, 10.0)
        # The earlier snapshot keeps its original stamps; the table moved.
        assert first.granted_at == 0.0
        assert table.get(CACHE_A, "w.x.com", RRType.A).granted_at == 5.0

    def test_track_file_round_trip(self, table, tmp_path):
        table.grant(CACHE_A, "w.x.com", RRType.A, now=3.0, length=7.0)
        table.grant(CACHE_B, "y.x.com", RRType.A, now=4.0, length=8.0)
        path = tmp_path / "track"
        assert save_track_file(table, str(path)) == 2
        text = path.read_text()
        assert "10.2.0.1 53 w.x.com. A 3.0 7.0" in text

    def test_rejects_nonpositive_length(self, table):
        with pytest.raises(ValueError):
            table.grant(CACHE_A, "w.x.com", RRType.A, 0.0, 0.0)

class TestMiddlewareBackendKnob:
    """The config knob swaps the live track file to the columnar table."""

    def test_array_backend_serves_live_leases(self, make_host, simulator):
        from repro.core import DynamicLeasePolicy, attach_dnscup
        from repro.dnslib import Rcode
        from repro.server import (
            AuthoritativeServer, RecursiveResolver, ResolverCache)
        from repro.zone import load_zone
        from tests.conftest import EXAMPLE_ZONE_TEXT
        from tests.test_core_middleware import ROOT_TEXT

        AuthoritativeServer(make_host("198.41.0.4"),
                            [load_zone(ROOT_TEXT, origin=Name.root())])
        auth = AuthoritativeServer(make_host("10.1.0.1"),
                                   [load_zone(EXAMPLE_ZONE_TEXT)])
        middleware = attach_dnscup(
            auth, policy=DynamicLeasePolicy(0.0),
            config=DNScupConfig(lease_table_backend="array"))
        assert isinstance(middleware.table, ArrayLeaseTable)
        resolver = RecursiveResolver(make_host("10.2.0.1"),
                                     [("198.41.0.4", 53)],
                                     cache=ResolverCache(),
                                     dnscup_enabled=True)
        results = []
        resolver.resolve("www.example.com", RRType.A,
                         lambda recs, rc: results.append(rc))
        simulator.run()
        assert results == [Rcode.NOERROR]
        assert len(middleware.table) == 1
        assert middleware.summary()["active_leases"] == 1.0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            DNScupConfig(lease_table_backend="bogus")


# -- observable equivalence on random operation sequences ----------------------


operations = st.lists(
    st.one_of(
        st.tuples(st.just("grant"),
                  st.integers(0, len(CACHES) - 1),
                  st.integers(0, len(NAMES) - 1),
                  st.floats(min_value=0.5, max_value=60.0)),
        st.tuples(st.just("revoke"),
                  st.integers(0, len(CACHES) - 1),
                  st.integers(0, len(NAMES) - 1)),
        st.tuples(st.just("sweep")),
    ),
    min_size=0, max_size=40)


@settings(max_examples=150, deadline=None)
@given(ops=operations, capacity=st.one_of(st.none(), st.integers(1, 4)),
       step=st.floats(min_value=0.0, max_value=30.0))
def test_equivalent_to_dict_table(ops, capacity, step):
    """Same operation sequence -> same observable state, both backends."""
    reference = LeaseTable(capacity=capacity)
    columnar = ArrayLeaseTable(capacity=capacity)
    now = 0.0
    for op in ops:
        now += step
        if op[0] == "grant":
            _, cache_i, name_i, length = op
            ref = reference.grant(CACHES[cache_i], NAMES[name_i], RRType.A,
                                  now, length)
            col = columnar.grant(CACHES[cache_i], NAMES[name_i], RRType.A,
                                 now, length)
            assert (ref is None) == (col is None)
            if ref is not None:
                assert dataclasses.astuple(ref) == dataclasses.astuple(col)
        elif op[0] == "revoke":
            _, cache_i, name_i = op
            assert (reference.revoke(CACHES[cache_i], NAMES[name_i], RRType.A)
                    == columnar.revoke(CACHES[cache_i], NAMES[name_i],
                                       RRType.A))
        else:
            assert reference.sweep(now) == columnar.sweep(now)
        # -- observable state must agree after every operation ------------
        assert len(reference) == len(columnar)
        assert reference.active_count(now) == columnar.active_count(now)
        assert dataclasses.astuple(reference.stats) \
            == dataclasses.astuple(columnar.stats)
        assert set(reference.tracked_records()) \
            == set(columnar.tracked_records())
        # Sorted multisets, not sets: set comparison would collapse the
        # duplicate snapshots a stale posting-list entry produces.
        for name in NAMES:
            ref_holders = sorted((h.cache, h.name, h.granted_at) for h in
                                 reference.holders(name, RRType.A, now))
            col_holders = sorted((h.cache, h.name, h.granted_at) for h in
                                 columnar.holders(name, RRType.A, now))
            assert ref_holders == col_holders
        for cache in CACHES:
            ref_held = sorted((l.cache, l.name, l.granted_at) for l in
                              reference.leases_of(cache, now))
            col_held = sorted((l.cache, l.name, l.granted_at) for l in
                              columnar.leases_of(cache, now))
            assert ref_held == col_held
