"""Tests for typed rdata."""

import pytest

from repro.dnslib import (
    A,
    AAAA,
    CNAME,
    EmptyRdata,
    MX,
    Name,
    NS,
    PTR,
    RRType,
    SOA,
    SRV,
    TXT,
    WireFormatError,
    WireReader,
    WireWriter,
    rdata_class_for,
    rdata_from_text,
    rdata_from_wire,
)


def roundtrip(rdata):
    writer = WireWriter(compress=False)
    rdata.to_wire(writer)
    data = writer.getvalue()
    decoded = rdata_from_wire(rdata.rrtype, WireReader(data), len(data))
    assert decoded == rdata
    return decoded


class TestA:
    def test_roundtrip(self):
        roundtrip(A("192.168.1.1"))

    def test_text(self):
        assert A("10.0.0.1").to_text() == "10.0.0.1"

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1",
                                     "a.b.c.d", "01.2.3.4", ""])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            A(bad)

    def test_wrong_rdlength_rejected(self):
        with pytest.raises(WireFormatError):
            rdata_from_wire(RRType.A, WireReader(b"\x01\x02\x03"), 3)

    def test_equality_and_hash(self):
        assert A("1.2.3.4") == A("1.2.3.4")
        assert hash(A("1.2.3.4")) == hash(A("1.2.3.4"))
        assert A("1.2.3.4") != A("1.2.3.5")


class TestAAAA:
    def test_roundtrip_full(self):
        roundtrip(AAAA("2001:0db8:0000:0000:0000:0000:0000:0001"))

    def test_roundtrip_elided(self):
        decoded = roundtrip(AAAA("2001:db8::1"))
        assert decoded == AAAA("2001:0db8:0:0:0:0:0:1")

    @pytest.mark.parametrize("bad", ["1:2", "::1::2", "zzzz::1", "1:2:3:4:5:6:7:8:9"])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            AAAA(bad)


class TestNameTypes:
    def test_ns_roundtrip(self):
        roundtrip(NS("ns1.example.com"))

    def test_cname_roundtrip(self):
        roundtrip(CNAME("target.example.com"))

    def test_ptr_roundtrip(self):
        roundtrip(PTR("host.example.com"))

    def test_from_text_relative(self):
        origin = Name.from_text("example.com")
        ns = NS.from_text(["ns1"], origin)
        assert ns.target == Name.from_text("ns1.example.com")

    def test_from_text_absolute(self):
        origin = Name.from_text("example.com")
        ns = NS.from_text(["ns1.other.net."], origin)
        assert ns.target == Name.from_text("ns1.other.net")


class TestSOA:
    def test_roundtrip(self):
        roundtrip(SOA("ns1.example.com", "admin.example.com",
                      2024010101, 7200, 900, 604800, 300))

    def test_serial_wraps_32bit(self):
        soa = SOA("a.", "b.", 2 ** 32 + 5, 1, 1, 1, 1)
        assert soa.serial == 5

    def test_from_text(self):
        origin = Name.from_text("example.com")
        soa = SOA.from_text(["ns1", "admin", "1", "7200", "900", "604800", "300"],
                            origin)
        assert soa.mname == Name.from_text("ns1.example.com")
        assert soa.minimum == 300


class TestMX:
    def test_roundtrip(self):
        roundtrip(MX(10, "mail.example.com"))

    def test_ordering_fields(self):
        assert MX(10, "a.b") != MX(20, "a.b")


class TestTXT:
    def test_roundtrip_single(self):
        roundtrip(TXT("hello"))

    def test_roundtrip_multi(self):
        roundtrip(TXT(["one", "two", "three"]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TXT([])

    def test_text_quotes(self):
        assert TXT("hi").to_text() == '"hi"'


class TestSRV:
    def test_roundtrip(self):
        roundtrip(SRV(0, 5, 8080, "svc.example.com"))


class TestEmptyAndGeneric:
    def test_zero_rdlength_decodes_to_empty(self):
        rdata = rdata_from_wire(RRType.A, WireReader(b""), 0)
        assert isinstance(rdata, EmptyRdata)
        assert rdata.rrtype == RRType.A

    def test_empty_writes_nothing(self):
        writer = WireWriter()
        EmptyRdata(RRType.ANY).to_wire(writer)
        assert writer.getvalue() == b""

    def test_unknown_type_decodes_generic(self):
        rdata = rdata_from_wire(RRType.OPT, WireReader(b"\x01\x02"), 2)
        assert rdata.data == b"\x01\x02"

    def test_rdlength_mismatch_rejected(self):
        # Declare 5 bytes for an A record: A consumes 4, mismatch.
        with pytest.raises(WireFormatError):
            rdata_from_wire(RRType.A, WireReader(b"\x01\x02\x03\x04\x05"), 5)


class TestRegistry:
    def test_rdata_class_for_known(self):
        assert rdata_class_for(RRType.A) is A

    def test_rdata_class_for_unknown_raises(self):
        with pytest.raises(ValueError):
            rdata_class_for(RRType.OPT)

    def test_rdata_from_text_dispatch(self):
        rdata = rdata_from_text(RRType.A, ["1.2.3.4"], Name.root())
        assert rdata == A("1.2.3.4")
