"""Failure-injection integration tests.

Crash/restart and partition scenarios around the DNScup state: the
track file across a server restart, unreachable caches recovering,
leases expiring mid-incident, and daemon-event semantics under load.
"""

import pytest

from repro.core import DNScup, DNScupConfig, DynamicLeasePolicy, attach_dnscup
from repro.dnslib import A, Name, RRType
from repro.net import Host, LinkProfile, Network, RetryPolicy, Simulator
from repro.server import AuthoritativeServer, RecursiveResolver
from repro.zone import load_zone

ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.                IN SOA a.root. admin. 1 7200 900 604800 300
.                IN NS a.root.
a.root.          IN A  198.41.0.4
example.com.     IN NS ns1.example.com.
ns1.example.com. IN A  10.1.0.1
"""

ZONE_TEXT = """\
$ORIGIN example.com.
$TTL 3600
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.1.0.1
www  IN A   10.0.0.10
"""


def build_world(make_host, simulator, notify_retry=None):
    AuthoritativeServer(make_host("198.41.0.4"),
                        [load_zone(ROOT_TEXT, origin=Name.root())])
    zone = load_zone(ZONE_TEXT)
    auth = AuthoritativeServer(make_host("10.1.0.1"), [zone])
    config = DNScupConfig()
    if notify_retry is not None:
        config = DNScupConfig(notify_retry=notify_retry)
    middleware = DNScup(auth, policy=DynamicLeasePolicy(0.0),
                        config=config).attach()
    resolver = RecursiveResolver(make_host("10.2.0.1"),
                                 [("198.41.0.4", 53)], dnscup_enabled=True)
    return zone, auth, middleware, resolver


def resolve(resolver, simulator, name="www.example.com"):
    results = []
    resolver.resolve(name, RRType.A, lambda recs, rc: results.append(recs))
    simulator.run()
    return results[0]


class TestServerRestart:
    def test_obligations_survive_restart_via_track_file(
            self, make_host, simulator, tmp_path):
        """Crash the authoritative server after granting leases; the
        restarted instance reloads the track file and still notifies."""
        zone, auth, middleware, resolver = build_world(make_host, simulator)
        resolve(resolver, simulator)
        path = str(tmp_path / "track.db")
        middleware.save_track_file(path)

        # "Crash": tear the middleware down entirely.
        middleware.detach()
        del middleware

        # "Restart": a fresh middleware instance, empty table, reload.
        revived = DNScup(auth, policy=DynamicLeasePolicy(0.0)).attach()
        assert len(revived.table) == 0
        revived.load_track_file(path)
        assert len(revived.table) == 1

        zone.replace_address("www.example.com", ["172.18.0.1"])
        simulator.run()
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert entry.rrset.rdatas == (A("172.18.0.1"),)

    def test_restart_without_track_file_degrades_to_ttl(
            self, make_host, simulator):
        """If the track file is lost, caches silently fall back to TTL —
        degraded but never wrong about who is notified."""
        zone, auth, middleware, resolver = build_world(make_host, simulator)
        resolve(resolver, simulator)
        middleware.detach()
        fresh = DNScup(auth, policy=DynamicLeasePolicy(0.0)).attach()
        zone.replace_address("www.example.com", ["172.18.0.2"])
        simulator.run()
        # No push happened (no lease state), cache still has old data.
        assert fresh.notification.stats.notifications_sent == 0
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert A("172.18.0.2") not in entry.rrset


class TestUnreachableCache:
    def test_dead_cache_marked_then_recovers(self, make_host, simulator,
                                             network):
        zone, auth, middleware, resolver = build_world(
            make_host, simulator,
            notify_retry=RetryPolicy(initial_timeout=0.3, max_attempts=2))
        resolve(resolver, simulator)
        # Partition the cache: 100% loss server -> cache.
        network.set_link_profile("10.1.0.1", "10.2.0.1",
                                 LinkProfile(loss_rate=0.9999))
        zone.replace_address("www.example.com", ["172.18.0.3"])
        simulator.run()
        assert ("10.2.0.1", 53) in middleware.notification.unreachable
        stale = resolver.cache.peek("www.example.com", RRType.A)
        assert A("172.18.0.3") not in stale.rrset

        # Partition heals; the next change is delivered and the cache
        # leaves the unreachable set.
        network.set_link_profile("10.1.0.1", "10.2.0.1", LinkProfile())
        zone.replace_address("www.example.com", ["172.18.0.4"])
        simulator.run()
        assert ("10.2.0.1", 53) not in middleware.notification.unreachable
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert entry.rrset.rdatas == (A("172.18.0.4"),)

    def test_lease_expires_during_partition_no_late_push(
            self, make_host, simulator, network):
        """A change after the lease lapsed must not notify at all —
        the obligation ended with the lease."""
        zone, auth, middleware, resolver = build_world(make_host, simulator)
        resolve(resolver, simulator)
        lease = next(iter(middleware.table))
        simulator.run_until(lease.expires_at + 1.0)
        zone.replace_address("www.example.com", ["172.18.0.5"])
        simulator.run()
        assert middleware.notification.stats.no_holders == 1
        assert middleware.notification.stats.notifications_sent == 0


class TestConcurrentChanges:
    def test_rapid_fire_changes_all_delivered_in_order(self, make_host,
                                                       simulator):
        """A burst of changes yields pushes whose final state matches
        the zone (last-writer-wins at the cache)."""
        zone, auth, middleware, resolver = build_world(make_host, simulator)
        resolve(resolver, simulator)
        for step in range(10):
            zone.replace_address("www.example.com", [f"172.19.0.{step + 1}"])
        simulator.run()
        stats = middleware.notification.stats
        assert stats.notifications_sent == 10
        assert stats.acks_received == 10
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert entry.rrset.rdatas == (A("172.19.0.10"),)

    def test_change_storm_with_loss_converges(self, make_host, simulator,
                                              network):
        """Loss + retransmission can reorder deliveries; the cache may
        transiently regress but the system must converge once a final
        quiet change goes through."""
        zone, auth, middleware, resolver = build_world(
            make_host, simulator,
            notify_retry=RetryPolicy(initial_timeout=0.4, max_attempts=5))
        resolve(resolver, simulator)
        network.set_link_profile("10.1.0.1", "10.2.0.1",
                                 LinkProfile(loss_rate=0.4))
        for step in range(5):
            zone.replace_address("www.example.com", [f"172.21.0.{step + 1}"])
            simulator.run_until(simulator.now + 0.05)
        simulator.run()
        # Quiet-period change: everything in flight has settled.
        zone.replace_address("www.example.com", ["172.21.0.99"])
        simulator.run()
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert entry.rrset.rdatas == (A("172.21.0.99"),)
