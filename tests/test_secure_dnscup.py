"""End-to-end tests for §5.3 secure DNScup: signed CACHE-UPDATE."""

import pytest

from repro.core import DNScup, DNScupConfig, DynamicLeasePolicy
from repro.dnslib import (
    A,
    Key,
    Keyring,
    Name,
    ResourceRecord,
    RRType,
    make_cache_update,
    sign,
)
from repro.net import RetryPolicy
from repro.server import AuthoritativeServer, RecursiveResolver
from repro.zone import load_zone
from tests.conftest import EXAMPLE_ZONE_TEXT

ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.                IN SOA a.root. admin. 1 7200 900 604800 300
.                IN NS a.root.
a.root.          IN A  198.41.0.4
example.com.     IN NS ns1.example.com.
ns1.example.com. IN A  10.1.0.1
"""


@pytest.fixture
def push_key():
    return Key.create("dnscup-push.example.com", b"a-very-secret-32-byte-keyvalue!!")


@pytest.fixture
def secure_world(make_host, simulator, push_key):
    root = AuthoritativeServer(make_host("198.41.0.4"),
                               [load_zone(ROOT_TEXT, origin=Name.root())])
    zone = load_zone(EXAMPLE_ZONE_TEXT)
    auth = AuthoritativeServer(make_host("10.1.0.1"), [zone])
    middleware = DNScup(
        auth, policy=DynamicLeasePolicy(0.0),
        config=DNScupConfig(
            tsig_key=push_key,
            notify_retry=RetryPolicy(initial_timeout=0.5, max_attempts=3)),
    ).attach()
    keyring = Keyring()
    keyring.add(push_key)
    resolver = RecursiveResolver(make_host("10.2.0.1"),
                                 [("198.41.0.4", 53)],
                                 dnscup_enabled=True,
                                 tsig_keyring=keyring, tsig_require=True)
    return zone, middleware, resolver, simulator


def resolve(resolver, simulator, name):
    results = []
    resolver.resolve(name, RRType.A, lambda recs, rc: results.append((recs, rc)))
    simulator.run()
    return results[0]


class TestSignedPush:
    def test_signed_update_applied_and_acked(self, secure_world):
        zone, middleware, resolver, simulator = secure_world
        resolve(resolver, simulator, "www.example.com")
        zone.replace_address("www.example.com", ["172.16.0.5"])
        simulator.run()
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert entry.rrset.rdatas == (A("172.16.0.5"),)
        assert middleware.notification.ack_ratio() == 1.0
        assert middleware.notification.stats.ack_tsig_failures == 0

    def test_forged_unsigned_push_rejected(self, secure_world, make_host,
                                           simulator):
        """An attacker without the key cannot poison the cache."""
        zone, middleware, resolver, sim = secure_world
        resolve(resolver, sim, "www.example.com")
        attacker = make_host("203.0.113.66").socket(5353)
        forged = make_cache_update(
            "www.example.com",
            [ResourceRecord("www.example.com", RRType.A, 3600,
                            A("203.0.113.99"))])
        acks = []
        attacker.request(forged.to_wire(), ("10.2.0.1", 53), forged.id,
                         lambda p, s: acks.append(p),
                         retry=RetryPolicy(initial_timeout=0.3,
                                           max_attempts=2))
        sim.run()
        assert acks == [(None)] or acks == [None]  # never acknowledged
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert A("203.0.113.99") not in entry.rrset
        assert resolver.stats.tsig_rejected_unsigned >= 1

    def test_forged_wrong_key_push_rejected(self, secure_world, make_host,
                                            simulator):
        zone, middleware, resolver, sim = secure_world
        resolve(resolver, sim, "www.example.com")
        wrong_key = Key.create("dnscup-push.example.com",
                               b"guessed-wrong-secret-32-bytes!!!")
        attacker = make_host("203.0.113.66").socket(5353)
        forged = make_cache_update(
            "www.example.com",
            [ResourceRecord("www.example.com", RRType.A, 3600,
                            A("203.0.113.99"))])
        attacker.request(sign(forged.to_wire(), wrong_key, sim.now),
                         ("10.2.0.1", 53), forged.id,
                         lambda p, s: None,
                         retry=RetryPolicy(initial_timeout=0.3,
                                           max_attempts=1))
        sim.run()
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert A("203.0.113.99") not in entry.rrset
        assert resolver.stats.tsig_failures >= 1

    def test_replayed_push_rejected(self, secure_world, make_host, push_key):
        """Capturing a legitimate signed push and replaying it later
        must not disturb the cache (timestamp monotonicity)."""
        zone, middleware, resolver, simulator = secure_world
        resolve(resolver, simulator, "www.example.com")
        # Capture a legitimate signed push by signing one ourselves with
        # the real key but an old timestamp.
        stale = make_cache_update(
            "www.example.com",
            [ResourceRecord("www.example.com", RRType.A, 3600,
                            A("10.0.0.10"))])
        old_wire = sign(stale.to_wire(), push_key, simulator.now)
        # A fresh legitimate push advances the verifier's clock.
        simulator.run_until(simulator.now + 600.0)
        zone.replace_address("www.example.com", ["172.16.0.7"])
        simulator.run()
        replayer = make_host("203.0.113.67").socket(5353)
        replayer.send(old_wire, ("10.2.0.1", 53))
        simulator.run()
        entry = resolver.cache.peek("www.example.com", RRType.A)
        assert entry.rrset.rdatas == (A("172.16.0.7"),)

    def test_plain_resolver_cannot_join_secure_channel(self, secure_world,
                                                       make_host):
        """A resolver without the key drops signed pushes — it falls
        back to TTL consistency rather than accepting unverifiable data."""
        zone, middleware, resolver, simulator = secure_world
        plain = RecursiveResolver(make_host("10.2.0.9"),
                                  [("198.41.0.4", 53)], dnscup_enabled=True)
        results = []
        plain.resolve("www.example.com", RRType.A,
                      lambda recs, rc: results.append(recs))
        simulator.run()
        zone.replace_address("www.example.com", ["172.16.0.8"])
        simulator.run()
        entry = plain.cache.peek("www.example.com", RRType.A)
        # The signed push was dropped; the entry still holds old data
        # and will refresh at TTL expiry (graceful degradation).
        assert A("172.16.0.8") not in entry.rrset

    def test_require_flag_validation(self, make_host):
        with pytest.raises(ValueError):
            RecursiveResolver(make_host("10.2.0.8"), [("198.41.0.4", 53)],
                              tsig_require=True)
