"""The concurrency-correctness pass: async rules, select ranges, and
the runtime sanitizer.

Static-rule behaviour on the seeded fixtures is pinned in
``test_analysis_lint.py`` (EXPECTED_BAD); this module covers the parts
with no fixture analogue: ``--select`` range expansion and its exit
codes, and the TSan-style :class:`repro.analysis.Sanitizer` armed via
``LiveClock(sanitize=True)``.
"""

import asyncio
import gc
import json
import pathlib
import threading
import time

import pytest

from repro.analysis import LintError, Sanitizer, parse_select
from repro.net import LiveClock, loopback_available
from repro.tools import lint_tool

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures" / "lint"


# -- --select parsing ----------------------------------------------------------


class TestParseSelect:
    def test_single_codes_pass_through(self):
        assert parse_select("DCUP001") == ["DCUP001"]
        assert parse_select("DCUP001,DCUP005") == ["DCUP001", "DCUP005"]

    def test_range_expands_inclusively(self):
        assert parse_select("DCUP009-DCUP013") == [
            "DCUP009", "DCUP010", "DCUP011", "DCUP012", "DCUP013"]

    def test_degenerate_range_is_one_code(self):
        assert parse_select("DCUP007-DCUP007") == ["DCUP007"]

    def test_codes_and_ranges_mix(self):
        assert parse_select("DCUP001,DCUP009-DCUP010,DCUP013") == [
            "DCUP001", "DCUP009", "DCUP010", "DCUP013"]

    @pytest.mark.parametrize("bad", ["DCUP9", "XCUP001-DCUP013",
                                     "dcup001", "DCUP001-DCUP002-DCUP003"])
    def test_malformed_tokens_raise(self, bad):
        with pytest.raises(LintError):
            parse_select(bad)

    def test_inverted_range_raises(self):
        with pytest.raises(LintError, match="inverted"):
            parse_select("DCUP013-DCUP009")

    @pytest.mark.parametrize("empty", ["", ",", " , "])
    def test_empty_expression_raises(self, empty):
        with pytest.raises(LintError, match="empty"):
            parse_select(empty)


class TestSelectCli:
    def test_range_selects_the_async_family(self, capsys):
        rc = lint_tool.main(["check", str(FIXTURES / "bad"),
                             "--select", "DCUP009-DCUP013",
                             "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        codes = sorted({f["code"] for f in payload["findings"]})
        assert codes == ["DCUP009", "DCUP010", "DCUP011",
                         "DCUP012", "DCUP013"]
        assert payload["count"] == 12

    def test_findings_exit_1_vs_usage_exit_2(self, capsys):
        assert lint_tool.main(["check", str(FIXTURES / "bad"),
                               "--select", "DCUP009"]) == 1
        assert lint_tool.main(["check", str(FIXTURES / "bad"),
                               "--select", "DCUP9"]) == 2
        assert lint_tool.main(["check", str(FIXTURES / "bad"),
                               "--select", "DCUP013-DCUP009"]) == 2
        err = capsys.readouterr().err
        assert "repro-lint: error" in err

    def test_selected_clean_subset_exits_0(self, capsys):
        rc = lint_tool.main(["check", str(FIXTURES / "good"),
                             "--select", "DCUP009-DCUP013"])
        assert rc == 0


# -- the runtime sanitizer -----------------------------------------------------


@pytest.fixture
def loop():
    created = asyncio.new_event_loop()
    yield created
    created.close()


class TestSanitizerUnits:
    def test_blocking_slice_over_threshold_reported(self, loop):
        sanitizer = Sanitizer(loop, block_threshold=0.01)

        def blocks():
            time.sleep(0.03)

        sanitizer.run_slice(blocks)
        reports = sanitizer.report()
        assert [f.code for f in reports] == ["DCUP009"]
        assert "blocks" in reports[0].message
        assert not sanitizer.ok

    def test_fast_slice_is_clean(self, loop):
        sanitizer = Sanitizer(loop, block_threshold=0.01)
        sanitizer.run_slice(lambda: None)
        assert sanitizer.report() == []
        assert sanitizer.ok

    def test_slice_timing_survives_callback_exceptions(self, loop):
        sanitizer = Sanitizer(loop, block_threshold=0.01)

        def explodes():
            time.sleep(0.03)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            sanitizer.run_slice(explodes)
        assert [f.code for f in sanitizer.report()] == ["DCUP009"]

    def test_never_awaited_coroutine_captured(self, loop):
        sanitizer = Sanitizer(loop)
        sanitizer.start()
        try:
            async def orphan():
                pass

            orphan()
            gc.collect()
        finally:
            sanitizer.stop()
        reports = sanitizer.report()
        assert [f.code for f in reports] == ["DCUP010"]
        assert "never awaited" in reports[0].message

    def test_guard_allows_owner_thread_and_flags_foreign(self, loop):
        class Registry:
            def __init__(self):
                self.taps = []

            def add_tap(self, fn):
                self.taps.append(fn)

        registry = Registry()
        sanitizer = Sanitizer(loop)
        sanitizer.guard("test.registry", registry, ("add_tap",))
        registry.add_tap(print)  # synchronous setup on the owner thread
        worker = threading.Thread(target=lambda: registry.add_tap(print))
        worker.start()
        worker.join()
        reports = sanitizer.report()
        assert [f.code for f in reports] == ["DCUP011"]
        assert "foreign thread" in reports[0].message
        # The sanitizer observes; it never blocks the mutation itself.
        assert len(registry.taps) == 2
        sanitizer.stop()
        # stop() unwraps: the instance attribute shadow is gone.
        assert "add_tap" not in vars(registry)

    def test_quiescence_reports_unadopted_tasks_once(self, loop):
        sanitizer = Sanitizer(loop)

        async def sleeper():
            await asyncio.sleep(60)

        async def scenario():
            leaked = asyncio.get_running_loop().create_task(sleeper())
            adopted = asyncio.get_running_loop().create_task(sleeper())
            sanitizer.adopt(adopted)
            await asyncio.sleep(0)
            sanitizer.check_quiescence()
            sanitizer.check_quiescence()  # same leak reported only once
            leaked.cancel()
            adopted.cancel()

        loop.run_until_complete(scenario())
        reports = sanitizer.report()
        assert [f.code for f in reports] == ["DCUP012"]
        assert "sleeper" in reports[0].message


@pytest.mark.skipif(not loopback_available(),
                    reason="loopback UDP unavailable on this platform")
class TestSanitizedLiveClock:
    def test_unsanitized_clock_has_no_sanitizer(self):
        clock = LiveClock()
        assert clock.sanitizer is None
        clock.loop.close()

    def test_spawn_is_retained_and_runs(self):
        clock = LiveClock()
        ran = []

        async def work():
            ran.append(1)

        clock.schedule(0.0, lambda: clock.spawn(work()))
        clock.run()
        clock.loop.close()
        assert ran == [1]

    def test_spawn_errors_surface_from_run(self):
        clock = LiveClock()

        async def fails():
            raise RuntimeError("spawned task blew up")

        clock.schedule(0.0, lambda: clock.spawn(fails()))
        with pytest.raises(RuntimeError, match="spawned task blew up"):
            clock.run()
        clock.loop.close()

    def test_clean_sanitized_run_reports_nothing(self):
        clock = LiveClock(sanitize=True)
        try:
            async def work():
                await asyncio.sleep(0)

            clock.schedule(0.0, lambda: clock.spawn(work()))
            clock.run()
            assert clock.sanitizer is not None
            assert clock.sanitizer.report() == []
        finally:
            clock.sanitizer.stop()
            clock.loop.close()

    def test_blocking_timer_callback_reported(self):
        clock = LiveClock(sanitize=True, block_threshold=0.01)
        try:
            def blocks():
                time.sleep(0.03)

            clock.schedule(0.0, blocks)
            clock.run()
            reports = clock.sanitizer.report()
            assert [f.code for f in reports] == ["DCUP009"]
        finally:
            clock.sanitizer.stop()
            clock.loop.close()

    def test_bare_create_task_flagged_at_quiescence(self):
        clock = LiveClock(sanitize=True)
        leaked = []
        try:
            async def lingers():
                await asyncio.sleep(60)

            def kick():
                # Deliberately NOT clock.spawn: the leak under test.
                leaked.append(clock.loop.create_task(lingers()))

            clock.schedule(0.0, kick)
            clock.run()
            reports = clock.sanitizer.report()
            assert [f.code for f in reports] == ["DCUP012"]
            assert "lingers" in reports[0].message
        finally:
            for task in leaked:
                task.cancel()
            clock.sanitizer.stop()
            clock.loop.close()
