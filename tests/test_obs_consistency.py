"""Hand-computed staleness / consistency-window scenario.

One physical change, one lossy cache link, one retransmission — every
timestamp in the run is computable by hand, so the consistency window
and staleness measurements can be asserted *exactly* (no tolerances)
against three independent accountings:

* the live ``notify.ack_rtt`` / ``notify.consistency_window`` histograms;
* the trace-derived recomputation (:func:`repro.obs.summarize_events`);
* the :class:`repro.sim.StalenessSample` / ``ConsistencyReport`` path.

Timeline (default link latency 0.01 s, no jitter; notify retry fires
after exactly 1.0 s):

====== ==============================================================
100.00 zone change committed; detected synchronously; CACHE-UPDATE sent
100.00 first datagram dropped (scripted loss on the auth->cache link)
101.00 retry timer fires; retransmission sent
101.01 retransmission delivered; cache applies the update (staleness
       window closes: 1.01 s) and acks
101.02 ack reaches the server (ack RTT = consistency window = 1.02 s)
====== ==============================================================
"""

from repro.core import DNScupConfig, DynamicLeasePolicy, attach_dnscup
from repro.dnslib import Name, RRType
from repro.net import Host, LatencyModel, LinkProfile, Network, Simulator
from repro.obs import Observability, consistency_windows, summarize_events
from repro.server import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.sim import ConsistencyReport, StalenessSample
from repro.zone import load_zone

LATENCY = 0.01
CHANGE_AT = 100.0
RETRY_TIMEOUT = 1.0

ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.              IN SOA a.root. admin. 1 7200 900 604800 300
.              IN NS a.root.
a.root.        IN A  198.41.0.4
viral.com.     IN NS ns1.viral.com.
ns1.viral.com. IN A  10.41.0.1
"""

ZONE_TEXT = """\
$ORIGIN viral.com.
$TTL 1800
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.41.0.1
www  IN A   10.40.0.1
"""


class ScriptedRng:
    """A stand-in rng whose ``random()`` plays back a fixed script."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        if not self.values:
            raise AssertionError("rng consulted more often than scripted")
        return self.values.pop(0)


def test_hand_computed_consistency_window(tmp_path):
    simulator = Simulator()
    network = Network(simulator, seed=99,
                      default_profile=LinkProfile(
                          latency=LatencyModel(base=LATENCY)))
    obs = Observability.for_simulator(simulator, capture=True)
    obs.observe_network(network)
    AuthoritativeServer(Host(network, "198.41.0.4"),
                        [load_zone(ROOT_TEXT, origin=Name.root())])
    zone = load_zone(ZONE_TEXT)
    auth = AuthoritativeServer(Host(network, "10.41.0.1"), [zone])
    middleware = attach_dnscup(auth, policy=DynamicLeasePolicy(0.0),
                               config=DNScupConfig(observability=obs))
    resolver = RecursiveResolver(Host(network, "10.42.0.1"),
                                 [("198.41.0.4", 53)], dnscup_enabled=True)
    client = StubResolver(Host(network, "10.43.0.1"), ("10.42.0.1", 53),
                          cache_seconds=0.0)

    # Warm the cache and obtain the lease over loss-free links.
    answers = []
    client.lookup("www.viral.com", lambda addrs, rc: answers.append(addrs))
    simulator.run()
    assert answers == [["10.40.0.1"]]
    assert len(middleware.table) == 1

    # From now on the auth->cache link drops per script: the first
    # CACHE-UPDATE is lost (0.25 < 0.5), its retransmission survives
    # (0.75 >= 0.5).  No other link has loss and no latency has jitter,
    # so nothing else consults the rng.
    network.set_link_profile(
        "10.41.0.1", "10.42.0.1",
        LinkProfile(latency=LatencyModel(base=LATENCY), loss_rate=0.5))
    network.rng = ScriptedRng([0.25, 0.75])

    # Record exactly when the cache adopts the pushed rrset.
    applied_at = []
    original_apply = resolver.cache.apply_cache_update

    def observed_apply(rrset, now):
        applied_at.append(now)
        return original_apply(rrset, now)

    resolver.cache.apply_cache_update = observed_apply

    simulator.schedule_at(
        CHANGE_AT,
        lambda: zone.replace_address("www.viral.com", ["203.0.113.9"]))
    simulator.run()

    # -- the hand computation ---------------------------------------------
    delivered_at = CHANGE_AT + RETRY_TIMEOUT + LATENCY       # 101.01
    acked_at = delivered_at + LATENCY                        # 101.02
    expected_staleness = delivered_at - CHANGE_AT            # 1.01
    expected_window = acked_at - CHANGE_AT                   # 1.02

    # Cache-side staleness: the update landed exactly when computed.
    assert applied_at == [delivered_at]

    # Live histograms: ack RTT == consistency window == 1.02 s, exactly.
    snap = obs.registry.snapshot()
    rtt = snap["histograms"]["notify.ack_rtt"]
    window = snap["histograms"]["notify.consistency_window"]
    assert rtt["count"] == 1 and window["count"] == 1
    assert rtt["sum"] == expected_window
    assert window["sum"] == expected_window

    # Module stats: one send, one retransmission, one ack, none lost.
    stats = middleware.notification.stats
    assert stats.notifications_sent == 1
    assert stats.retransmissions == 1
    assert stats.acks_received == 1
    assert stats.failures == 0
    assert stats.in_flight == 0

    # Trace-derived recomputation agrees to the last bit.
    events = list(obs.trace.events)
    summary = summarize_events(events)
    assert summary["notify"]["retransmits"] == 1
    assert summary["notify"]["ack_rtt"]["sum"] == expected_window
    assert summary["changes"]["consistency_window"]["sum"] == expected_window
    assert consistency_windows(events) == [(1, expected_window)]
    send_events = [ev for ev in events if ev[1] == "notify.send"]
    retransmit_events = [ev for ev in events if ev[1] == "notify.retransmit"]
    assert [t for t, _n, _f in send_events] == [CHANGE_AT]
    assert len(retransmit_events) == 1

    # File round trip through the obs tool path preserves exactness.
    from repro.obs import load_trace_events
    trace_path = tmp_path / "trace.jsonl"
    obs.trace.export_jsonl(str(trace_path))
    reloaded = summarize_events(load_trace_events(str(trace_path)))
    assert reloaded == summary

    # Wire capture saw the drop and both CACHE-UPDATE transmissions.
    drops = [r for r in obs.capture.records if r["fate"] == "dropped"]
    assert len(drops) == 1
    assert drops[0]["opcode"] == "CACHE-UPDATE"
    cache_updates = [r for r in obs.capture.records
                     if r["opcode"] == "CACHE-UPDATE" and not r["qr"]]
    assert len(cache_updates) == 2  # dropped original + delivered retry

    # The sim-metrics path reports the same staleness window.
    sample = StalenessSample(name="www.viral.com", changed_at=CHANGE_AT,
                             recovered_at={"10.42.0.1": applied_at[0]})
    report = ConsistencyReport(samples=[sample])
    assert sample.windows() == [expected_staleness]
    assert report.mean_staleness() == expected_staleness
    assert report.max_staleness() == expected_staleness

    # Staleness (cache adopts) precedes full consistency (server learns).
    assert expected_staleness < expected_window

    # And the client now sees the new address.
    post = []
    client.lookup("www.viral.com", lambda addrs, rc: post.append(addrs))
    simulator.run()
    assert post == [["203.0.113.9"]]
