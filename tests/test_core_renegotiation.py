"""Tests for §5.1.2 lease renegotiation."""

import pytest

from repro.core import DynamicLeasePolicy, RenegotiationAgent, attach_dnscup
from repro.dnslib import Name, RRType
from repro.server import AuthoritativeServer, RecursiveResolver
from repro.zone import load_zone

ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.                IN SOA a.root. admin. 1 7200 900 604800 300
.                IN NS a.root.
a.root.          IN A  198.41.0.4
example.com.     IN NS ns1.example.com.
ns1.example.com. IN A  10.1.0.1
"""

# A short record TTL so un-leased entries re-query upstream quickly and
# the server sees the rising RRC values.
ZONE_TEXT = """\
$ORIGIN example.com.
$TTL 3600
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.1.0.1
www  30 IN A 10.0.0.10
"""

KEY = (Name.from_text("www.example.com"), RRType.A)


@pytest.fixture
def world(make_host, simulator):
    """Auth server granting leases only above 0.01 q/s; short leases so
    renegotiation matters."""
    AuthoritativeServer(make_host("198.41.0.4"),
                        [load_zone(ROOT_TEXT, origin=Name.root())])
    zone = load_zone(ZONE_TEXT)
    auth = AuthoritativeServer(make_host("10.1.0.1"), [zone])
    middleware = attach_dnscup(
        auth, policy=DynamicLeasePolicy(rate_threshold=0.01),
        max_lease_fn=lambda n, t: 7200.0)
    resolver = RecursiveResolver(make_host("10.2.0.1"),
                                 [("198.41.0.4", 53)],
                                 dnscup_enabled=True, rrc_window=600.0)
    agent = RenegotiationAgent(resolver, interval=300.0, change_factor=4.0)
    return zone, auth, middleware, resolver, agent, simulator


def drive_queries(resolver, simulator, count, period, name="www.example.com"):
    """Issue ``count`` resolutions spaced ``period`` seconds apart."""
    for _ in range(count):
        resolver.resolve(name, RRType.A, lambda recs, rc: None)
        simulator.run_until(simulator.now + period)


class TestValidation:
    def test_needs_dnscup_resolver(self, make_host):
        plain = RecursiveResolver(make_host("10.2.0.7"),
                                  [("198.41.0.4", 53)])
        with pytest.raises(ValueError):
            RenegotiationAgent(plain)

    def test_change_factor_validated(self, world):
        _, _, _, resolver, _, _ = world
        with pytest.raises(ValueError):
            RenegotiationAgent(resolver, change_factor=1.0)


class TestRenegotiation:
    def test_hot_record_gets_lease_after_rate_rise(self, world):
        """A record initially too cold for a lease gets one after its
        rate rises and the agent renegotiates."""
        zone, auth, middleware, resolver, agent, simulator = world
        # One lonely query: rate ~1/600 = 0.0017 < threshold → no lease.
        drive_queries(resolver, simulator, 1, 1.0)
        assert len(middleware.table) == 0
        # The record heats up: queries every 5 s → rate 0.2 >> threshold.
        # (Cache absorbs them, so the server only learns via RRC on the
        # next upstream contact — which is the renegotiation... but with
        # no lease there is nothing to renegotiate; the TTL expiry path
        # re-queries with the higher RRC.)  Shrink the TTL to force it.
        entry = resolver.cache.peek(*KEY)
        entry.expires_at = simulator.now + 10.0
        drive_queries(resolver, simulator, 30, 5.0)
        assert len(middleware.table) >= 1
        assert resolver.cache.peek(*KEY).has_lease(simulator.now)

    def test_agent_refreshes_lease_on_rate_rise(self, world):
        zone, auth, middleware, resolver, agent, simulator = world
        # Warm up: moderate rate earns a lease.
        drive_queries(resolver, simulator, 20, 10.0)   # 0.1 q/s
        assert resolver.cache.peek(*KEY).has_lease(simulator.now)
        grant_before = resolver.lease_grants[KEY]
        # Rate rises 10x; within the lease all queries are local, so only
        # the agent can tell the server.
        drive_queries(resolver, simulator, 60, 1.0)
        simulator.run_until(simulator.now + 301.0)  # let the agent tick
        simulator.run()
        assert agent.stats.renegotiations_sent >= 1
        assert agent.stats.leases_refreshed >= 1
        grant_after = resolver.lease_grants[KEY]
        assert grant_after.granted_at > grant_before.granted_at
        assert grant_after.rate_at_grant > grant_before.rate_at_grant

    def test_agent_reports_collapse_and_loses_lease(self, world):
        zone, auth, middleware, resolver, agent, simulator = world
        drive_queries(resolver, simulator, 40, 2.0)    # hot: 0.5 q/s
        assert resolver.cache.peek(*KEY).has_lease(simulator.now)
        # Traffic stops entirely; the agent's next scans see the collapse
        # and the server declines the renegotiated lease.
        simulator.run_until(simulator.now + 1200.0)
        simulator.run()
        assert agent.stats.renegotiations_sent >= 1
        assert agent.stats.leases_lost >= 1

    def test_no_renegotiation_once_rate_stable(self, world):
        """While the rate ramps up the agent may renegotiate; once the
        rate is steady the scans go quiet."""
        zone, auth, middleware, resolver, agent, simulator = world
        drive_queries(resolver, simulator, 60, 10.0)  # ramp to 0.1 q/s
        sent_after_ramp = agent.stats.renegotiations_sent
        drive_queries(resolver, simulator, 60, 10.0)  # steady 0.1 q/s
        assert agent.stats.renegotiations_sent == sent_after_ramp
        assert agent.stats.checks > 0

    def test_renegotiation_refreshes_data_too(self, world):
        """The renegotiated answer also refreshes the cached rrset."""
        zone, auth, middleware, resolver, agent, simulator = world
        drive_queries(resolver, simulator, 20, 10.0)
        # Change data without DNScup noticing (detach notification by
        # revoking leases server-side only).
        middleware.detach()
        zone.replace_address("www.example.com", ["172.29.0.1"])
        middleware.attach()
        # Rate rises → renegotiation → fresh answer adopted.
        drive_queries(resolver, simulator, 60, 1.0)
        simulator.run_until(simulator.now + 301.0)
        simulator.run()
        from repro.dnslib import A
        entry = resolver.cache.peek(*KEY)
        assert A("172.29.0.1") in entry.rrset

    def test_stop_halts_scans(self, world):
        zone, auth, middleware, resolver, agent, simulator = world
        agent.stop()
        checks = agent.stats.checks
        drive_queries(resolver, simulator, 10, 100.0)
        assert agent.stats.checks == checks
