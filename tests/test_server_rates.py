"""Tests for query-rate estimators and RRC encoding."""

import pytest

from repro.server import EwmaRate, WindowedRate, rate_to_rrc, rrc_to_rate


class TestWindowedRate:
    def test_rate_counts_window_events(self):
        tracker = WindowedRate(window=10.0)
        for t in (0.0, 1.0, 2.0, 3.0):
            tracker.record("k", t)
        assert tracker.rate("k", 3.0) == pytest.approx(4 / 10.0)

    def test_old_events_pruned(self):
        tracker = WindowedRate(window=10.0)
        tracker.record("k", 0.0)
        tracker.record("k", 20.0)
        assert tracker.count("k", 20.0) == 1

    def test_unknown_key_zero(self):
        tracker = WindowedRate(window=10.0)
        assert tracker.rate("nope", 5.0) == 0.0

    def test_keys_are_independent(self):
        tracker = WindowedRate(window=10.0)
        tracker.record("a", 0.0)
        tracker.record("b", 0.0)
        tracker.record("b", 1.0)
        assert tracker.count("a", 2.0) == 1
        assert tracker.count("b", 2.0) == 2

    def test_empty_key_garbage_collected(self):
        tracker = WindowedRate(window=10.0)
        tracker.record("k", 0.0)
        tracker.count("k", 100.0)
        assert len(tracker) == 0

    def test_forget(self):
        tracker = WindowedRate(window=10.0)
        tracker.record("k", 0.0)
        tracker.forget("k")
        assert tracker.count("k", 0.0) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedRate(window=0.0)


class TestEwmaRate:
    def test_converges_to_steady_rate(self):
        tracker = EwmaRate(half_life=50.0)
        # 1 event/second for 500 seconds.
        for t in range(500):
            tracker.record("k", float(t))
        assert tracker.rate("k", 500.0) == pytest.approx(1.0, rel=0.2)

    def test_decays_without_events(self):
        tracker = EwmaRate(half_life=10.0)
        for t in range(100):
            tracker.record("k", float(t))
        hot = tracker.rate("k", 100.0)
        cold = tracker.rate("k", 200.0)
        assert cold < hot / 100

    def test_half_life_semantics(self):
        tracker = EwmaRate(half_life=10.0)
        for t in range(100):
            tracker.record("k", float(t))
        now_rate = tracker.rate("k", 100.0)
        later_rate = tracker.rate("k", 110.0)
        assert later_rate == pytest.approx(now_rate / 2, rel=0.01)

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            EwmaRate(half_life=-1.0)


class TestRrcEncoding:
    def test_roundtrip(self):
        rate = 0.125
        assert rrc_to_rate(rate_to_rrc(rate)) == pytest.approx(rate, abs=1e-3)

    def test_saturates_at_16_bits(self):
        assert rate_to_rrc(10_000.0) == 0xFFFF

    def test_zero(self):
        assert rate_to_rrc(0.0) == 0
        assert rrc_to_rate(0) == 0.0

    def test_low_rates_representable(self):
        # One query per 1000 s (the milliquery scale's floor).
        assert rate_to_rrc(0.001) == 1
