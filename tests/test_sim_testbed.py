"""Tests for the Figure 7 prototype testbed."""

import pytest

from repro.dnslib import MAX_UDP_PAYLOAD, Rcode, RRType
from repro.sim import Testbed, TestbedConfig


@pytest.fixture(scope="module")
def testbed():
    tb = Testbed(TestbedConfig())
    tb.lookup_all(0)
    tb.lookup_all(1)
    return tb


class TestConstruction:
    def test_forty_zones(self, testbed):
        assert len(testbed.zones) <= 40
        assert len(testbed.zones) >= 10  # enough distinct zones selected

    def test_two_slaves_and_two_caches(self, testbed):
        assert len(testbed.slaves) == 2
        assert len(testbed.caches) == 2

    def test_slaves_bootstrap_consistent(self, testbed):
        assert testbed.slaves_consistent()


class TestResolutionThroughHierarchy:
    def test_all_domains_resolvable_from_both_clients(self, testbed):
        for client_index in (0, 1):
            answers = testbed.lookup_all(client_index)
            assert all(addrs for addrs in answers.values())

    def test_answers_match_zone_contents(self, testbed):
        answers = testbed.lookup_all(0)
        for domain in testbed.domains:
            zone = testbed.zones[domain.zone_origin]
            rrset = zone.get_rrset(domain.name, RRType.A)
            zone_addresses = {r.address for r in rrset.rdatas}
            assert set(answers[domain.name]) <= zone_addresses


class TestDynamicUpdateFlow:
    def test_update_propagates_everywhere(self, testbed):
        domain = testbed.domains[0]
        rcode = testbed.dynamic_update(domain.name, "172.31.0.99")
        assert rcode == Rcode.NOERROR
        testbed.run()
        # Master zone updated.
        zone = testbed.zones[domain.zone_origin]
        addresses = {r.address
                     for r in zone.get_rrset(domain.name, RRType.A).rdatas}
        assert addresses == {"172.31.0.99"}
        # Slaves follow via NOTIFY + IXFR.
        assert testbed.slaves_consistent()
        # Leased caches follow via CACHE-UPDATE.
        for cache in testbed.caches:
            entry = cache.cache.peek(domain.name, RRType.A)
            if entry is not None and entry.has_lease(testbed.simulator.now):
                cached = {r.address for r in entry.rrset.rdatas}
                assert cached == {"172.31.0.99"}

    def test_update_to_unknown_name_raises(self, testbed):
        with pytest.raises(ValueError):
            testbed.dynamic_update("www.not-in-testbed.zz", "10.0.0.1")


class TestPaperValidations:
    def test_all_messages_below_512_bytes(self, testbed):
        """§5.2: 'all message sizes are far below the limitation of 512
        bytes, set by RFC 1035'."""
        assert 0 < testbed.max_message_size() <= MAX_UDP_PAYLOAD

    def test_dnscup_messages_accepted_alongside_plain_dns(self, testbed):
        stats = testbed.dnscup.notification.stats
        assert testbed.dnscup.listening.stats.grants > 0
        # The earlier update test pushed at least one notification.
        assert stats.acks_received == stats.notifications_sent

    def test_weak_mode_testbed_works_too(self):
        tb = Testbed(TestbedConfig(dnscup_enabled=False))
        answers = tb.lookup_all(0)
        assert all(addrs for addrs in answers.values())
        assert tb.dnscup is None
