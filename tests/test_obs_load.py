"""Tests for the load-attribution plane (obs/load.py) and its wiring:
multi-tap trace bus, shared bucket quantiles, ledger attribution,
storm detection, and the registry exposure."""

import math
import random

import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    Histogram,
    LOAD_STORM_END,
    LOAD_STORM_START,
    LoadLedger,
    Registry,
    StormDetector,
    TraceBus,
    histogram_percentile,
)
from repro.obs.load import (
    CLASS_DELIVER,
    CLASS_NOTIFY,
    CLASS_QUERY,
    CLASS_RENEWAL,
    CLASS_RETRANSMIT,
    DecayedRate,
    OVERFLOW_DOMAIN,
    P2Quantile,
    QuantileSketch,
)


class TestDecayedRate:
    def test_mass_decays_exponentially(self):
        rate = DecayedRate(10.0)
        rate.add(0.0)
        assert rate.rate(0.0) == pytest.approx(0.1)
        # One event, ten seconds later: mass e^-1, rate e^-1 / 10.
        assert rate.rate(10.0) == pytest.approx(math.exp(-1.0) / 10.0)

    def test_rate_tracks_stationary_stream(self):
        # 50 events/s held long past the window converges to ~50/s.
        rate = DecayedRate(10.0)
        last = 0.0
        for i in range(5000):
            last = i * 0.02
            rate.add(last)
        assert rate.rate(last) == pytest.approx(50.0, rel=0.02)

    def test_out_of_order_observation_does_not_decay_backwards(self):
        rate = DecayedRate(10.0)
        rate.add(100.0)
        before = rate.mass
        rate.add(50.0)  # stale timestamp: mass grows, never rewinds
        assert rate.mass == pytest.approx(before + 1.0)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            DecayedRate(0.0)


class TestP2Quantile:
    def test_small_streams_interpolate_sorted_buffer(self):
        sketch = P2Quantile(0.5)
        for v in (3.0, 1.0, 2.0):
            sketch.observe(v)
        assert sketch.value() == pytest.approx(2.0)

    def test_tracks_numpy_percentile_on_uniform_stream(self):
        rng = random.Random(2006)
        values = [rng.random() for _ in range(20000)]
        for p in (0.5, 0.95, 0.99):
            sketch = P2Quantile(p)
            for v in values:
                sketch.observe(v)
            # Uniform[0, 1): the true quantile is p itself.
            assert sketch.value() == pytest.approx(p, abs=0.02)

    def test_deterministic_for_same_stream(self):
        values = [math.sin(i) ** 2 for i in range(1000)]
        a, b = P2Quantile(0.9), P2Quantile(0.9)
        for v in values:
            a.observe(v)
            b.observe(v)
        assert a.value() == b.value()

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestQuantileSketch:
    def test_as_dict_shape(self):
        sketch = QuantileSketch()
        assert sketch.as_dict()["count"] == 0.0
        assert sketch.as_dict()["min"] is None
        for v in (1.0, 2.0, 3.0):
            sketch.observe(v)
        summary = sketch.as_dict()
        assert summary["count"] == 3.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert set(summary) == {"count", "min", "max", "p50", "p95", "p99"}


class TestStormDetector:
    def test_opens_on_burst_and_closes_with_hysteresis(self):
        detector = StormDetector(burst_ratio=8.0, exit_ratio=2.0,
                                 min_rate=50.0)
        detector.observe("srv", 0.0, fast_rate=40.0, slow_rate=1.0)
        assert detector.active_count == 0  # below the absolute floor
        detector.observe("srv", 1.0, fast_rate=80.0, slow_rate=1.0)
        assert detector.active_count == 1
        # Still above the exit ratio: the episode stays open.
        detector.observe("srv", 2.0, fast_rate=30.0, slow_rate=1.0)
        assert detector.active_count == 1
        detector.observe("srv", 3.0, fast_rate=1.5, slow_rate=1.0)
        assert detector.active_count == 0
        (episode,) = detector.episodes
        assert episode.start == 1.0 and episode.end == 3.0
        assert episode.peak_rate == 80.0
        assert episode.events == 3

    def test_quiet_server_never_storms(self):
        # Doubling from 0.1/s to 0.4/s clears the ratio but not the
        # absolute floor.
        detector = StormDetector()
        detector.observe("srv", 0.0, fast_rate=0.4, slow_rate=0.05)
        assert detector.active_count == 0 and not detector.episodes

    def test_close_open_flushes_and_traces(self):
        bus = TraceBus()
        detector = StormDetector(trace=bus)
        detector.observe("a", 1.0, fast_rate=500.0, slow_rate=1.0)
        detector.observe("b", 2.0, fast_rate=500.0, slow_rate=1.0)
        detector.close_open(10.0)
        assert detector.active_count == 0
        assert [e.end for e in detector.episodes] == [10.0, 10.0]
        names = [name for _t, name, _f in bus.events]
        assert names == [LOAD_STORM_START, LOAD_STORM_START,
                         LOAD_STORM_END, LOAD_STORM_END]

    def test_rejects_inverted_hysteresis(self):
        with pytest.raises(ValueError):
            StormDetector(burst_ratio=2.0, exit_ratio=4.0)


class TestLoadLedger:
    def test_attributes_by_server_domain_class(self):
        ledger = LoadLedger()
        ledger.record("s1", "a.com", CLASS_QUERY, 0.0)
        ledger.record("s1", "a.com", CLASS_RENEWAL, 1.0)
        ledger.record("s2", "b.com", CLASS_NOTIFY, 1.0)
        assert ledger.total == 3
        assert set(ledger.keys) == {("s1", "a.com", CLASS_QUERY),
                                    ("s1", "a.com", CLASS_RENEWAL),
                                    ("s2", "b.com", CLASS_NOTIFY)}
        assert ledger.servers["s1"].classes == {CLASS_QUERY: 1,
                                                CLASS_RENEWAL: 1}

    def test_domain_cap_folds_overflow(self):
        ledger = LoadLedger(domain_cap=2)
        for i in range(5):
            ledger.record("s", f"d{i}.com", CLASS_QUERY, float(i))
        domains = {domain for _s, domain, _c in ledger.keys}
        assert domains == {"d0.com", "d1.com", OVERFLOW_DOMAIN}

    def test_recorder_facet_binds_server(self):
        ledger = LoadLedger()
        recorder = ledger.recorder("auth:53")
        recorder.record("a.com", CLASS_NOTIFY, 1.0, depth=7.0)
        assert ("auth:53", "a.com", CLASS_NOTIFY) in ledger.keys
        assert ledger.servers["auth:53"].depth_sketch.max == 7.0

    def test_top_ranks_by_count_then_key(self):
        ledger = LoadLedger()
        for _ in range(3):
            ledger.record("s", "hot.com", CLASS_QUERY, 1.0)
        ledger.record("s", "cold.com", CLASS_QUERY, 1.0)
        top = ledger.top(1)
        assert [row["domain"] for row in top] == ["hot.com"]
        assert top[0]["count"] == 3

    def test_tap_feed_maps_protocol_events(self):
        ledger = LoadLedger(default_server="auth")
        ledger.on_event((0.0, "lease.grant", {"name": "a.com."}))
        ledger.on_event((1.0, "lease.renew", {"name": "a.com."}))
        ledger.on_event((2.0, "renego.send", {"name": "a.com."}))
        ledger.on_event((3.0, "notify.send", {"name": "a.com."}))
        ledger.on_event((4.0, "notify.retransmit", {"name": "a.com."}))
        ledger.on_event((5.0, "net.deliver", {"src": "a:1", "dst": "b:53"}))
        ledger.on_event((6.0, "notify.ack", {"name": "a.com."}))  # ignored
        assert ledger.total == 6
        assert ledger.servers["auth"].classes == {
            CLASS_QUERY: 1, CLASS_RENEWAL: 2, CLASS_NOTIFY: 1,
            CLASS_RETRANSMIT: 1}
        assert ledger.servers["b:53"].classes == {CLASS_DELIVER: 1}

    def test_rates_and_snapshot_shape(self):
        ledger = LoadLedger(window=10.0)
        for i in range(100):
            ledger.record("s", "a.com", CLASS_QUERY, i * 0.01)
        assert ledger.rate() > 0.0
        assert ledger.peak_rate() >= ledger.rate()
        assert ledger.server_quantile("s", 99.0, "rate") > 0.0
        assert ledger.server_quantile("missing", 50.0) is None
        snapshot = ledger.snapshot()
        assert snapshot["total"] == 100
        assert snapshot["servers"]["s"]["count"] == 100
        assert snapshot["storms"] == {"active": 0, "episodes": []}

    def test_storms_mirrored_to_trace(self):
        bus = TraceBus()
        ledger = LoadLedger(window=10.0, baseline=600.0, trace=bus)
        assert ledger.detector.trace is bus
        for _ in range(2000):
            ledger.record("s", "a.com", CLASS_RENEWAL, 100.0)
        assert ledger.detector.active_count == 1
        assert bus.counts()[LOAD_STORM_START] == 1

    def test_rejects_baseline_not_exceeding_window(self):
        with pytest.raises(ValueError):
            LoadLedger(window=10.0, baseline=10.0)

    def test_bind_registry_exposes_gauges(self):
        ledger = LoadLedger()
        registry = Registry()
        ledger.bind_registry(registry)
        ledger.record("s", "a.com", CLASS_QUERY, 0.0, depth=3.0)
        ledger.record("s", "a.com", CLASS_QUERY, 0.5, depth=4.0)
        gauges = registry.snapshot()["gauges"]
        for name in ("load.events", "load.keys", "load.servers",
                     "load.rate", "load.peak_rate", "load.rate_p99",
                     "load.gap_p50", "load.gap_p99", "load.depth_p99",
                     "load.storm.active", "load.storm.episodes"):
            assert name in gauges
        assert gauges["load.events"] == 2.0
        # Two depth samples (3.0, 4.0): the small-stream linear
        # interpolation puts p99 at 3.0 + 0.99 * (4.0 - 3.0).
        assert gauges["load.depth_p99"] == pytest.approx(3.99)
        assert gauges["load.storm.active"] == 0.0


class TestMultiTapTraceBus:
    def test_two_taps_see_events_in_install_order(self):
        bus = TraceBus()
        seen = []
        first = lambda record: seen.append(("first", record[1]))  # noqa: E731
        second = lambda record: seen.append(("second", record[1]))  # noqa: E731
        bus.add_tap(first)
        bus.add_tap(second)
        bus.emit("lease.grant", name="a.com.")
        assert seen == [("first", "lease.grant"), ("second", "lease.grant")]

    def test_single_tap_keeps_pointer_fast_path(self):
        bus = TraceBus()
        fn = lambda record: None  # noqa: E731
        bus.add_tap(fn)
        # One tap: no fan-out wrapper, the emit check stays one pointer.
        assert bus.tap is fn
        bus.remove_tap(fn)
        assert bus.tap is None

    def test_remove_leaves_other_tap_installed(self):
        bus = TraceBus()
        seen = []
        keep = lambda record: seen.append(record[1])  # noqa: E731
        drop = lambda record: seen.append("dropped")  # noqa: E731
        bus.add_tap(keep)
        bus.add_tap(drop)
        bus.remove_tap(drop)
        assert bus.tap is keep
        bus.emit("lease.renew", name="a.com.")
        assert seen == ["lease.renew"]

    def test_telemetry_and_ledger_coexist(self):
        # The live wiring: an auditing tap and a load ledger side by
        # side on one bus, both fed by a single emit.
        bus = TraceBus()
        audited = []
        ledger = LoadLedger(default_server="auth")
        bus.add_tap(lambda record: audited.append(record[1]))
        bus.add_tap(ledger.on_event)
        bus.emit("lease.grant", name="a.com.")
        bus.emit("notify.send", name="a.com.")
        assert audited == ["lease.grant", "notify.send"]
        assert ledger.total == 2

    def test_legacy_direct_assignment_is_adopted(self):
        bus = TraceBus()
        seen = []
        legacy = lambda record: seen.append("legacy")  # noqa: E731
        bus.tap = legacy
        bus.add_tap(lambda record: seen.append("added"))
        bus.emit("lease.grant", name="a.com.")
        assert seen == ["legacy", "added"]
        bus.remove_tap(legacy)
        bus.emit("lease.grant", name="a.com.")
        assert seen == ["legacy", "added", "added"]

    def test_duplicate_tap_rejected(self):
        bus = TraceBus()
        fn = lambda record: None  # noqa: E731
        bus.add_tap(fn)
        with pytest.raises(ValueError):
            bus.add_tap(fn)

    def test_remove_unknown_tap_raises(self):
        bus = TraceBus()
        with pytest.raises(ValueError):
            bus.remove_tap(lambda record: None)


def _legacy_histogram_percentile(hist, quantile):
    """The pre-refactor report.py walk, kept verbatim as the oracle."""
    if not 0.0 <= quantile <= 100.0:
        raise ValueError(f"quantile out of range: {quantile}")
    count = hist.count
    buckets = list(zip((*hist.bounds, math.inf), hist.counts))
    low = hist.min if count else None
    high = hist.max if count else None
    if not count:
        return None
    target = quantile / 100.0 * count
    cumulative = 0
    estimate = high
    previous_bound = low if low is not None else 0.0
    for bound, bucket_count in buckets:
        upper = bound
        if math.isinf(upper):
            upper = high if high is not None else previous_bound
        if bucket_count and cumulative + bucket_count >= target:
            lower = min(previous_bound, upper)
            fraction = max(0.0, target - cumulative) / bucket_count
            estimate = lower + (upper - lower) * fraction
            break
        cumulative += bucket_count
        previous_bound = max(previous_bound, bound if not math.isinf(bound)
                             else previous_bound)
    if estimate is None:
        return None
    if low is not None:
        estimate = max(estimate, low)
    if high is not None:
        estimate = min(estimate, high)
    return estimate


class TestSharedBucketQuantile:
    def test_histogram_quantile_matches_legacy_walk(self):
        rng = random.Random(7)
        for _case in range(50):
            hist = Histogram("h", LATENCY_BUCKETS)
            for _ in range(rng.randrange(1, 200)):
                hist.observe(rng.expovariate(10.0))
            for quantile in (0.0, 10.0, 50.0, 95.0, 99.0, 100.0):
                assert hist.quantile(quantile) == \
                    _legacy_histogram_percentile(hist, quantile)

    def test_empty_histogram_is_none(self):
        hist = Histogram("h", LATENCY_BUCKETS)
        assert hist.quantile(50.0) is None
        assert histogram_percentile(hist, 50.0) is None

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", LATENCY_BUCKETS).quantile(101.0)

    def test_snapshot_dict_path_matches_live_histogram(self):
        hist = Histogram("h", LATENCY_BUCKETS)
        rng = random.Random(11)
        for _ in range(300):
            hist.observe(rng.expovariate(3.0))
        snapshot = hist.as_dict()
        for quantile in (50.0, 95.0, 99.0):
            assert histogram_percentile(snapshot, quantile) == \
                pytest.approx(histogram_percentile(hist, quantile))
