"""Tests for the full wire-level protocol scenario."""

import pytest

from repro.dnslib import RRType
from repro.sim import ProtocolScenario, ScenarioConfig
from repro.traces import (
    DomainSpec,
    PoissonRelocation,
    PopulationConfig,
    StableProcess,
    WorkloadConfig,
    generate_population,
    CATEGORY_REGULAR,
)
from repro.dnslib import Name


@pytest.fixture(scope="module")
def population():
    return generate_population(PopulationConfig(regular_per_tld=4,
                                                cdn_count=5, dyn_count=5))


def small_workload(duration=900.0, client_cache=0.0):
    return WorkloadConfig(duration=duration, clients=12, nameservers=3,
                          total_request_rate=1.5,
                          client_cache_seconds=client_cache, seed=9)


class TestTopology:
    def test_zones_partitioned_across_servers(self, population):
        scenario = ProtocolScenario(population,
                                    ScenarioConfig(auth_servers=3))
        served = sum(len(s.zones) for s in scenario.auth_servers)
        assert served == len(scenario.zones)
        assert all(s.zones for s in scenario.auth_servers)

    def test_root_delegates_every_zone(self, population):
        scenario = ProtocolScenario(population)
        for origin in scenario.zones:
            assert scenario.root_zone.get_rrset(origin, RRType.NS) is not None

    def test_truth_initialized(self, population):
        scenario = ProtocolScenario(population)
        assert set(scenario.truth) == {d.name for d in population}


class TestWorkloadRuns:
    def test_lookups_answered_and_graded(self, population):
        scenario = ProtocolScenario(population)
        issued = scenario.run_workload(small_workload())
        assert issued > 0
        report = scenario.report
        assert report.answers == issued
        assert report.fresh_answers > 0

    def test_changes_scheduled_before_workload(self, population):
        scenario = ProtocolScenario(population)
        count = scenario.schedule_changes(900.0)
        scenario.run_workload(small_workload())
        assert count >= 0
        with pytest.raises(RuntimeError):
            scenario.schedule_changes(900.0)


class TestConsistencyComparison:
    """The reproduction's headline: DNScup closes the staleness window."""

    @pytest.fixture(scope="class")
    def domains(self):
        # Hot domains that physically relocate often, with long TTLs —
        # the worst case for TTL-based (weak) consistency.
        domains = []
        for index in range(6):
            name = Name.from_text(f"www.svc{index}.com")
            process = PoissonRelocation([f"10.50.{index}.1"],
                                        mean_lifetime=400.0,
                                        seed=100 + index)
            domains.append(DomainSpec(name, CATEGORY_REGULAR, 3600.0, 1.0,
                                      process))
        return domains

    def run(self, domains, enabled):
        scenario = ProtocolScenario(
            domains, ScenarioConfig(dnscup_enabled=enabled,
                                    staleness_probe_interval=2.0))
        scenario.run_workload(small_workload(duration=1800.0))
        return scenario

    def test_dnscup_shrinks_staleness_window(self, domains):
        with_cup = self.run(domains, enabled=True)
        without = self.run(domains, enabled=False)
        stale_with = with_cup.report.mean_staleness()
        stale_without = without.report.mean_staleness()
        assert stale_with is not None and stale_without is not None
        assert stale_with < stale_without / 10

    def test_dnscup_reduces_stale_answers(self, domains):
        with_cup = self.run(domains, enabled=True)
        without = self.run(domains, enabled=False)
        assert with_cup.report.stale_answer_ratio <= \
            without.report.stale_answer_ratio

    def test_dnscup_summary_nonzero(self, domains):
        scenario = self.run(domains, enabled=True)
        summary = scenario.dnscup_summary()
        assert summary["grants"] > 0
        assert summary["notifications_sent"] > 0
        assert summary["acks_received"] > 0

    def test_weak_mode_has_no_middleware(self, domains):
        scenario = self.run(domains, enabled=False)
        assert scenario.dnscup_summary() == {}


class TestLossResilience:
    def test_consistency_survives_packet_loss(self, population):
        scenario = ProtocolScenario(
            population, ScenarioConfig(dnscup_enabled=True, loss_rate=0.2))
        scenario.run_workload(small_workload())
        summary = scenario.dnscup_summary()
        if summary.get("notifications_sent", 0) > 0:
            # Retransmission should keep the ack ratio high despite loss.
            assert summary["acks_received"] >= \
                0.8 * summary["notifications_sent"]
