"""Shard-count invariance: partitioning must not change a single byte.

The sharded engine (:mod:`repro.sim.shard`) partitions a trace by
domain, replays each shard independently — optionally in separate
processes — and merges the per-shard tables with exact arithmetic
(integer sums plus Shewchuk-partial folding).  The property under test:
the metrics JSON a 1-shard run produces is *byte-identical* to the
2-shard and 8-shard runs, and all of them match the reference oracle.
"""

import dataclasses
import io
import json
import math
import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dnslib import Name
from repro.sim import (
    ColumnarTrace,
    dynamic_lease_fn,
    fixed_lease_fn,
    flash_crowd_columnar,
    gather_subtrace,
    load_metric_table,
    scan_metric_table,
    shard_of_name,
    shard_pair_ids,
    sharded_figure5_sweep,
    sharded_lease_replay,
    sharded_load_metrics,
    sharded_scan_metrics,
    simulate_lease_trace,
)
from repro.traces.workload import QueryEvent, measured_rates

NAMES = [Name.from_text(f"host{i}.example.com") for i in range(24)]

DURATION = 1000.0

FIXED_LENGTHS = (3.0, 47.0, 600.0)
THRESHOLDS = (0.0, 0.002, 0.02, 0.2)


def make_max_lease_of(spread):
    def max_lease_of(name):
        return spread * (1 + len(name.labels[0]) % 3)
    return max_lease_of


def metrics_json(fixed, dynamic, polling):
    """The canonical byte representation compared across shard counts."""
    return json.dumps(
        [dataclasses.asdict(result)
         for result in list(fixed) + list(dynamic) + [polling]],
        sort_keys=True).encode("utf-8")


def columns_for(events, max_lease_of):
    trace = ColumnarTrace.from_events(events)
    rates = measured_rates(events, DURATION, by="name-nameserver") \
        if events else {}
    return (trace, rates, trace.rate_column(rates),
            trace.max_lease_column(max_lease_of))


events_strategy = st.lists(
    st.builds(
        QueryEvent,
        time=st.floats(min_value=0.0, max_value=DURATION * 1.2,
                       allow_nan=False, allow_infinity=False),
        client=st.integers(0, 4),
        name=st.sampled_from(NAMES),
        nameserver=st.integers(0, 5)),
    min_size=0, max_size=400)


class TestShardInvariance:
    @settings(max_examples=40, deadline=None)
    @given(events=events_strategy,
           spread=st.floats(min_value=0.5, max_value=500.0))
    def test_1_2_8_shards_byte_identical(self, events, spread):
        events = sorted(events, key=lambda e: e.time)
        trace, _rates, rate_col, lease_col = columns_for(
            events, make_max_lease_of(spread))
        baseline = None
        for nshards in (1, 2, 8):
            fixed, dynamic, polling = sharded_figure5_sweep(
                trace, rate_col, lease_col, FIXED_LENGTHS, THRESHOLDS,
                DURATION, nshards)
            blob = metrics_json(fixed, dynamic, polling)
            if baseline is None:
                baseline = blob
            else:
                assert blob == baseline, \
                    f"{nshards}-shard metrics differ from 1-shard run"

    @settings(max_examples=15, deadline=None)
    @given(events=events_strategy,
           spread=st.floats(min_value=0.5, max_value=500.0))
    def test_sharded_matches_reference_oracle(self, events, spread):
        events = sorted(events, key=lambda e: e.time)
        max_lease_of = make_max_lease_of(spread)
        trace, rates, rate_col, lease_col = columns_for(events, max_lease_of)
        fixed, dynamic, _polling = sharded_figure5_sweep(
            trace, rate_col, lease_col, FIXED_LENGTHS, THRESHOLDS,
            DURATION, 4)
        for length, result in zip(FIXED_LENGTHS, fixed):
            reference = simulate_lease_trace(
                events, rates, max_lease_of, fixed_lease_fn(length),
                DURATION, scheme="fixed", parameter=length)
            assert dataclasses.astuple(reference) \
                == dataclasses.astuple(result)
        for threshold, result in zip(THRESHOLDS, dynamic):
            reference = simulate_lease_trace(
                events, rates, max_lease_of, dynamic_lease_fn(threshold),
                DURATION, scheme="dynamic", parameter=threshold)
            assert dataclasses.astuple(reference) \
                == dataclasses.astuple(result)

    def test_pool_matches_serial(self):
        """The multiprocessing path returns the serial path's bytes."""
        rng = random.Random(3)
        events = sorted(
            (QueryEvent(rng.uniform(0, DURATION), 0, rng.choice(NAMES),
                        rng.randrange(6))
             for _ in range(1500)),
            key=lambda e: e.time)
        trace, _rates, rate_col, lease_col = columns_for(
            events, make_max_lease_of(120.0))
        serial = sharded_figure5_sweep(trace, rate_col, lease_col,
                                       FIXED_LENGTHS, THRESHOLDS, DURATION,
                                       4)
        pooled = sharded_figure5_sweep(trace, rate_col, lease_col,
                                       FIXED_LENGTHS, THRESHOLDS, DURATION,
                                       4, processes=2)
        assert metrics_json(*serial) == metrics_json(*pooled)

    def test_single_replay_shard_invariant(self):
        rng = random.Random(9)
        events = sorted(
            (QueryEvent(rng.uniform(0, DURATION), 0, rng.choice(NAMES),
                        rng.randrange(6))
             for _ in range(900)),
            key=lambda e: e.time)
        trace, _rates, _rate_col, lease_col = columns_for(
            events, make_max_lease_of(80.0))
        lengths = np.minimum(47.0, lease_col)
        results = [sharded_lease_replay(trace, lengths, DURATION, nshards,
                                        scheme="fixed", parameter=47.0)
                   for nshards in (1, 2, 8)]
        assert len({dataclasses.astuple(result)
                    for result in results}) == 1


class TestShardMechanics:
    def test_shard_of_name_is_stable_and_case_insensitive(self):
        """The shard layout must not depend on process hash salting or
        on the case the name arrived in."""
        lower = Name.from_text("cache.example.com")
        upper = Name.from_text("CACHE.Example.COM")
        for nshards in (1, 2, 7, 8):
            shard = shard_of_name(lower, nshards)
            assert 0 <= shard < nshards
            assert shard == shard_of_name(upper, nshards)

    def test_shard_pair_ids_partition_all_pairs(self):
        rng = random.Random(1)
        events = [QueryEvent(rng.uniform(0, DURATION), 0, rng.choice(NAMES),
                             rng.randrange(6)) for _ in range(400)]
        trace = ColumnarTrace.from_events(events)
        for nshards in (1, 3, 8):
            shards = shard_pair_ids(trace, nshards)
            merged = np.concatenate(shards)
            assert sorted(merged.tolist()) == list(range(trace.pair_count))
            # All pairs of one domain land on one shard.
            for shard, pair_ids in enumerate(shards):
                for pair_id in pair_ids.tolist():
                    assert shard_of_name(trace.names[pair_id],
                                         nshards) == shard

    def test_gather_subtrace_preserves_segments(self):
        rng = random.Random(2)
        events = [QueryEvent(rng.uniform(0, DURATION), 0, rng.choice(NAMES),
                             rng.randrange(6)) for _ in range(300)]
        trace = ColumnarTrace.from_events(events)
        pair_ids = shard_pair_ids(trace, 3)[0]
        times, starts, sorted_mask = gather_subtrace(trace, pair_ids)
        assert int(starts[-1]) == len(times)
        for local, pair_id in enumerate(pair_ids.tolist()):
            original = trace.times[trace.starts[pair_id]:
                                   trace.starts[pair_id + 1]]
            gathered = times[starts[local]:starts[local + 1]]
            assert gathered.tolist() == original.tolist()
            assert bool(sorted_mask[local]) == bool(
                trace.sorted_mask[pair_id])


class TestShardMetrics:
    """Registry-level telemetry from the sharded scan is shard-count
    invariant: ``sharded_scan_metrics`` exports byte-identical JSON at
    1/2/8 shards, on the pool as on the serial path."""

    def _smoke_inputs(self):
        trace, lease_col = flash_crowd_columnar(
            caches=120, regular_domains=30, duration=86400.0, seed=7)
        return trace, lease_col, 86400.0

    def _export(self, registry):
        buffer = io.StringIO()
        registry.export_json(buffer)
        return buffer.getvalue()

    def test_1_2_8_shards_byte_identical(self):
        trace, lease_col, duration = self._smoke_inputs()
        exports = {}
        for nshards in (1, 2, 8):
            registry = sharded_scan_metrics(trace, lease_col, duration,
                                            nshards)
            exports[nshards] = self._export(registry)
        assert exports[1] == exports[2] == exports[8]
        snapshot = json.loads(exports[1])
        assert snapshot["counters"]["scale.pairs"] == trace.pair_count
        assert snapshot["counters"]["scale.queries"] == len(trace.times)
        assert "scale.lease_term" in snapshot["histograms"]
        assert "scale.renewals_per_pair" in snapshot["histograms"]
        assert "scale.staleness_exposure" in snapshot["histograms"]

    def test_pool_matches_serial(self):
        trace, lease_col, duration = self._smoke_inputs()
        serial = sharded_scan_metrics(trace, lease_col, duration, 4)
        pooled = sharded_scan_metrics(trace, lease_col, duration, 4,
                                      processes=2)
        assert self._export(serial) == self._export(pooled)

    def test_histogram_sums_are_exact(self):
        trace, lease_col, duration = self._smoke_inputs()
        registry = sharded_scan_metrics(trace, lease_col, duration, 8)
        table = scan_metric_table(trace.times, trace.starts,
                                  trace.sorted_mask, lease_col, duration)
        by_name = {row[0]: row for row in table["histograms"]}
        for name, row in by_name.items():
            hist = registry.histogram(name, row[1])
            assert hist.sum == math.fsum(row[5]), name
            assert hist.counts == row[2], name


class TestLoadMetrics:
    """The load-attribution reduction is shard-count invariant too:
    ``sharded_load_metrics`` exports byte-identical JSON at 1/2/8
    shards, on the pool as on the serial path, and matches the
    unsharded ``load_metric_table`` reduction exactly."""

    def _smoke_trace(self):
        trace, _lease_col = flash_crowd_columnar(
            caches=120, regular_domains=30, duration=86400.0, seed=13)
        return trace

    def _export(self, registry):
        buffer = io.StringIO()
        registry.export_json(buffer)
        return buffer.getvalue()

    def test_1_2_8_shards_byte_identical(self):
        trace = self._smoke_trace()
        exports = {nshards: self._export(sharded_load_metrics(trace, nshards))
                   for nshards in (1, 2, 8)}
        assert exports[1] == exports[2] == exports[8]
        snapshot = json.loads(exports[1])
        assert snapshot["counters"]["load.pairs"] == trace.pair_count
        assert snapshot["counters"]["load.queries"] == len(trace.times)
        assert "load.interarrival_gap" in snapshot["histograms"]
        assert "load.arrivals_per_pair" in snapshot["histograms"]

    def test_pool_matches_serial(self):
        trace = self._smoke_trace()
        serial = sharded_load_metrics(trace, 4)
        pooled = sharded_load_metrics(trace, 4, processes=2)
        assert self._export(serial) == self._export(pooled)

    def test_matches_unsharded_reduction(self):
        trace = self._smoke_trace()
        registry = sharded_load_metrics(trace, 8)
        table = load_metric_table(trace.times, trace.starts,
                                  trace.sorted_mask)
        for name, value in table["counters"]:
            assert registry.counter(name).value == value, name
        for row in table["histograms"]:
            hist = registry.histogram(row[0], row[1])
            assert hist.counts == row[2], row[0]
            assert hist.sum == math.fsum(row[5]), row[0]
