"""The columnar replay engine against the reference oracle.

Same contract :mod:`tests.test_fastreplay` established for the pair-
indexed engine: for any trace, any trained rates and any scheme,
:mod:`repro.sim.columnar` must return the exact
:class:`~repro.sim.metrics.LeaseSimResult` (every field, including the
float ``lease_seconds``) that
:func:`~repro.sim.driver.simulate_lease_trace` produces by brute-force
replay.  Wide-trace cases push past the vectorized scanner's scalar
cutoff so the lockstep column sweep — not just the straggler path — is
held to bit identity.
"""

import dataclasses
import random

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dnslib import Name
from repro.sim import (
    ColumnarTrace,
    columnar_dynamic_sweep,
    columnar_lease_replay,
    columnar_polling,
    dynamic_lease_fn,
    figure5_curves,
    fixed_lease_fn,
    no_lease_fn,
    simulate_lease_trace,
)
from repro.sim.columnar import _SCALAR_CUTOFF
from repro.traces import DomainSpec, StableProcess
from repro.traces.workload import QueryEvent, measured_rates

NAMES = [Name.from_text(f"host{i}.example.com") for i in range(6)]
#: Enough (name, nameserver) combinations to keep the vectorized
#: lockstep sweep busy well past the scalar cutoff.
WIDE_NAMES = [Name.from_text(f"wide{i}.example.com") for i in range(40)]

DURATION = 1000.0


def _assert_identical(reference, columnar):
    """Field-for-field comparison with a readable diff on failure."""
    assert dataclasses.astuple(reference) == dataclasses.astuple(columnar), \
        f"\nreference: {reference}\ncolumnar:  {columnar}"


def make_max_lease_of(spread):
    """A deterministic per-name max lease with some variety."""
    def max_lease_of(name):
        return spread * (1 + len(name.labels[0]) % 3)
    return max_lease_of


def trained(events):
    return measured_rates(events, DURATION, by="name-nameserver") \
        if events else {}


def columns_for(events, max_lease_of):
    trace = ColumnarTrace.from_events(events)
    rates = trained(events)
    return (trace, rates, trace.rate_column(rates),
            trace.max_lease_column(max_lease_of))


# -- strategies ----------------------------------------------------------------

events_strategy = st.lists(
    st.builds(
        QueryEvent,
        time=st.floats(min_value=0.0, max_value=DURATION * 1.2,
                       allow_nan=False, allow_infinity=False),
        client=st.integers(0, 4),
        name=st.sampled_from(NAMES),
        nameserver=st.integers(0, 2)),
    min_size=0, max_size=200)

wide_times_strategy = st.lists(
    st.floats(min_value=0.0, max_value=DURATION * 1.2,
              allow_nan=False, allow_infinity=False),
    min_size=400, max_size=900)


def wide_events(times):
    """Spread drawn times over 320 distinct pairs, round-robin, so the
    lockstep sweep always has a batch far above the scalar cutoff."""
    return [QueryEvent(t, 0, WIDE_NAMES[i % len(WIDE_NAMES)],
                       (i // len(WIDE_NAMES)) % 8)
            for i, t in enumerate(times)]

lengths_strategy = st.floats(min_value=0.001, max_value=DURATION * 2,
                             allow_nan=False, allow_infinity=False)


# -- the property: bit-identical to the oracle ---------------------------------


class TestColumnarEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(events=events_strategy, length=lengths_strategy,
           spread=st.floats(min_value=0.5, max_value=500.0))
    def test_fixed_scheme_identical(self, events, length, spread):
        events = sorted(events, key=lambda e: e.time)
        max_lease_of = make_max_lease_of(spread)
        trace, rates, rate_col, lease_col = columns_for(events, max_lease_of)
        reference = simulate_lease_trace(
            events, rates, max_lease_of, fixed_lease_fn(length), DURATION,
            scheme="fixed", parameter=length)
        columnar = columnar_lease_replay(
            trace, rate_col, lease_col, fixed_lease_fn(length), DURATION,
            scheme="fixed", parameter=length)
        _assert_identical(reference, columnar)

    @settings(max_examples=60, deadline=None)
    @given(events=events_strategy, spread=st.floats(min_value=0.5,
                                                    max_value=500.0),
           thresholds=st.lists(st.floats(min_value=0.0, max_value=1.0),
                               min_size=1, max_size=8))
    def test_dynamic_sweep_identical(self, events, spread, thresholds):
        events = sorted(events, key=lambda e: e.time)
        max_lease_of = make_max_lease_of(spread)
        trace, rates, rate_col, lease_col = columns_for(events, max_lease_of)
        reference = [
            simulate_lease_trace(events, rates, max_lease_of,
                                 dynamic_lease_fn(threshold), DURATION,
                                 scheme="dynamic", parameter=threshold)
            for threshold in thresholds]
        columnar = columnar_dynamic_sweep(trace, rate_col, lease_col,
                                          thresholds, DURATION)
        assert len(reference) == len(columnar)
        for ref, col in zip(reference, columnar):
            _assert_identical(ref, col)

    @settings(max_examples=40, deadline=None)
    @given(events=events_strategy)
    def test_polling_identical(self, events):
        rates = trained(events)
        trace = ColumnarTrace.from_events(events)
        reference = simulate_lease_trace(
            events, rates, lambda name: 100.0, no_lease_fn(), DURATION,
            scheme="none")
        _assert_identical(reference, columnar_polling(trace, DURATION))

    @settings(max_examples=25, deadline=None)
    @given(times=wide_times_strategy, length=lengths_strategy,
           spread=st.floats(min_value=0.5, max_value=500.0))
    def test_wide_trace_exercises_vectorized_sweep(self, times, length,
                                                   spread):
        """Hundreds of active pairs: the lockstep column sweep (not the
        scalar straggler path) must match the oracle bit for bit."""
        events = sorted(wide_events(times), key=lambda e: e.time)
        max_lease_of = make_max_lease_of(spread)
        trace, rates, rate_col, lease_col = columns_for(events, max_lease_of)
        assert trace.pair_count >= _SCALAR_CUTOFF
        reference = simulate_lease_trace(
            events, rates, max_lease_of, fixed_lease_fn(length), DURATION,
            scheme="fixed", parameter=length)
        columnar = columnar_lease_replay(
            trace, rate_col, lease_col, fixed_lease_fn(length), DURATION,
            scheme="fixed", parameter=length)
        _assert_identical(reference, columnar)

    @settings(max_examples=40, deadline=None)
    @given(events=events_strategy, length=lengths_strategy,
           seed=st.integers(0, 2**16))
    def test_unsorted_trace_identical(self, events, length, seed):
        """The oracle replays events in *input* order; the columnar
        engine's unsorted-segment fallback must preserve that."""
        random.Random(seed).shuffle(events)
        max_lease_of = make_max_lease_of(10.0)
        trace, rates, rate_col, lease_col = columns_for(events, max_lease_of)
        reference = simulate_lease_trace(
            events, rates, max_lease_of, fixed_lease_fn(length), DURATION,
            scheme="fixed", parameter=length)
        columnar = columnar_lease_replay(
            trace, rate_col, lease_col, fixed_lease_fn(length), DURATION,
            scheme="fixed", parameter=length)
        _assert_identical(reference, columnar)


# -- the trace container -------------------------------------------------------


class TestColumnarTrace:
    def test_sorted_mask_detection(self):
        """Only decreases *inside* a segment mark it unsorted; a drop
        across the segment boundary must not."""
        times = np.asarray([5.0, 9.0, 1.0, 4.0, 3.0], dtype=np.float64)
        starts = np.asarray([0, 2, 5], dtype=np.int64)
        trace = ColumnarTrace(times, starts,
                              [NAMES[0], NAMES[1]],
                              np.asarray([0, 0], dtype=np.int64))
        assert trace.sorted_mask.tolist() == [True, False]

    def test_trained_rates_match_oracle_training(self):
        rng = random.Random(11)
        events = sorted(
            (QueryEvent(rng.uniform(0, DURATION), 0, rng.choice(NAMES),
                        rng.randrange(3))
             for _ in range(300)),
            key=lambda e: e.time)
        window = DURATION / 7.0
        trace = ColumnarTrace.from_events(events)
        oracle = measured_rates([e for e in events if e.time < window],
                                window, by="name-nameserver")
        column = trace.trained_rates(window)
        for index in range(trace.pair_count):
            pair = (trace.names[index], int(trace.nameservers[index]))
            assert column[index] == oracle.get(pair, 0.0)

    def test_empty_trace(self):
        trace = ColumnarTrace.from_events([])
        result = columnar_lease_replay(
            trace, np.empty(0), np.empty(0), fixed_lease_fn(1.0), DURATION)
        reference = simulate_lease_trace(
            [], {}, lambda n: 1.0, fixed_lease_fn(1.0), DURATION)
        _assert_identical(reference, result)

    def test_lease_truncated_at_duration(self):
        events = [QueryEvent(995.0, 0, NAMES[0], 0)]
        trace, rates, rate_col, lease_col = columns_for(
            events, lambda name: 1e9)
        result = columnar_lease_replay(
            trace, rate_col, lease_col, fixed_lease_fn(50.0), DURATION,
            scheme="fixed", parameter=50.0)
        assert result.grants == 1
        assert result.lease_seconds == 5.0

    def test_figure5_columnar_engine_agrees(self):
        """The public Figure 5 entry point: columnar and reference
        engines return identical curves."""
        rng = random.Random(5)
        domains = [DomainSpec(name, category, 3600.0, 1.0,
                              StableProcess(["10.0.0.1"]))
                   for name, category in zip(
                       NAMES, ("regular", "cdn", "dyn", "regular", "cdn",
                               "dyn"))]
        events = sorted(
            (QueryEvent(rng.uniform(0, DURATION), rng.randrange(6),
                        rng.choice(NAMES), rng.randrange(3))
             for _ in range(800)),
            key=lambda e: e.time)
        kwargs = dict(duration=DURATION, fixed_lengths=[5.0, 50.0, 500.0],
                      rate_thresholds=[0.0, 0.01, 0.1, 10.0])
        columnar = figure5_curves(events, domains, engine="columnar",
                                  **kwargs)
        reference = figure5_curves(events, domains, engine="reference",
                                   **kwargs)
        for ref, col in zip(reference.fixed + reference.dynamic
                            + [reference.polling],
                            columnar.fixed + columnar.dynamic
                            + [columnar.polling]):
            _assert_identical(ref, col)
