"""Tests for the command-line tools."""

import pytest

from repro.report import format_table, read_csv, write_csv
from repro.tools import leasesim_tool, probe_tool, testbed_tool, trace_tool
from repro.traces import load_trace


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(("name", "value"),
                            [("a", 1), ("long-name", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in lines[3] or "long-name" in lines[4]

    def test_csv_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.csv")
        assert write_csv(path, ("a", "b"), [(1, 2), (3, 4)]) == 2
        rows = read_csv(path)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


class TestTraceTool:
    def test_generates_trace_and_catalog(self, tmp_path):
        trace_path = str(tmp_path / "trace.txt")
        catalog_path = str(tmp_path / "catalog.csv")
        rc = trace_tool.main([trace_path, "--days", "0.02",
                              "--rate", "2.0",
                              "--regular-per-tld", "5", "--cdn", "5",
                              "--dyn", "5", "--catalog", catalog_path])
        assert rc == 0
        events = load_trace(trace_path)
        assert events
        assert max(e.time for e in events) <= 0.02 * 86400
        catalog = read_csv(catalog_path)
        assert catalog[0] == ["name", "category", "ttl"]
        assert len(catalog) > 1

    def test_deterministic_for_seed(self, tmp_path):
        a = str(tmp_path / "a.txt")
        b = str(tmp_path / "b.txt")
        argv = ["--days", "0.01", "--rate", "2.0", "--regular-per-tld",
                "3", "--cdn", "3", "--dyn", "3", "--seed", "9"]
        trace_tool.main([a] + argv)
        trace_tool.main([b] + argv)
        assert open(a).read() == open(b).read()


class TestLeasesimTool:
    def test_end_to_end_over_generated_trace(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        catalog_path = str(tmp_path / "catalog.csv")
        curves_path = str(tmp_path / "curves.csv")
        trace_tool.main([trace_path, "--days", "0.1", "--rate", "3.0",
                         "--regular-per-tld", "8", "--cdn", "8",
                         "--dyn", "8", "--catalog", catalog_path])
        rc = leasesim_tool.main([trace_path, "--catalog", catalog_path,
                                 "--output", curves_path,
                                 "--fixed-points", "4",
                                 "--dynamic-points", "4"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "Figure 5 readings" in output
        rows = read_csv(curves_path)
        assert rows[0][0] == "scheme"
        schemes = {row[0] for row in rows[1:]}
        assert schemes == {"fixed", "dynamic"}

    def test_empty_trace_fails(self, tmp_path):
        path = str(tmp_path / "empty.txt")
        open(path, "w").write("# nothing\n")
        assert leasesim_tool.main([path]) == 1

    def test_engines_write_identical_curves(self, tmp_path):
        """--engine fast (default) and --engine reference agree byte for
        byte on the emitted CSV."""
        trace_path = str(tmp_path / "trace.txt")
        trace_tool.main([trace_path, "--days", "0.05", "--rate", "3.0",
                         "--regular-per-tld", "6", "--cdn", "6",
                         "--dyn", "6"])
        fast_csv = str(tmp_path / "fast.csv")
        reference_csv = str(tmp_path / "reference.csv")
        assert leasesim_tool.main([trace_path, "--output", fast_csv,
                                   "--fixed-points", "4",
                                   "--dynamic-points", "4"]) == 0
        assert leasesim_tool.main([trace_path, "--output", reference_csv,
                                   "--engine", "reference",
                                   "--fixed-points", "4",
                                   "--dynamic-points", "4"]) == 0
        assert open(fast_csv).read() == open(reference_csv).read()


class TestProbeTool:
    def test_prints_summary_and_writes_csv(self, tmp_path, capsys):
        out = str(tmp_path / "probe.csv")
        rc = probe_tool.main(["--regular-per-tld", "6", "--cdn", "6",
                              "--dyn", "6", "--max-probes", "120",
                              "--output", out])
        assert rc == 0
        output = capsys.readouterr().out
        assert "DNS dynamics" in output
        rows = read_csv(out)
        assert rows[0][0] == "name"
        assert len(rows) == 1 + 6 * 10 + 6 + 6  # header + population


class TestTestbedTool:
    def test_healthy_run_returns_zero(self, capsys):
        rc = testbed_tool.main(["--zones", "12", "--updates", "3"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "testbed validation" in output
        assert "True" in output

    def test_weak_baseline_runs(self, capsys):
        rc = testbed_tool.main(["--zones", "8", "--updates", "2",
                                "--no-dnscup"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "CACHE-UPDATEs sent" not in output
