"""Tests for the command-line tools."""

import json

import pytest

from repro.obs import TraceBus
from repro.report import format_table, read_csv, write_csv
from repro.tools import (
    leasesim_tool,
    obs_tool,
    probe_tool,
    testbed_tool,
    trace_tool,
)
from repro.traces import load_trace


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(("name", "value"),
                            [("a", 1), ("long-name", 22)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in lines[3] or "long-name" in lines[4]

    def test_csv_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.csv")
        assert write_csv(path, ("a", "b"), [(1, 2), (3, 4)]) == 2
        rows = read_csv(path)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


class TestTraceTool:
    def test_generates_trace_and_catalog(self, tmp_path):
        trace_path = str(tmp_path / "trace.txt")
        catalog_path = str(tmp_path / "catalog.csv")
        rc = trace_tool.main([trace_path, "--days", "0.02",
                              "--rate", "2.0",
                              "--regular-per-tld", "5", "--cdn", "5",
                              "--dyn", "5", "--catalog", catalog_path])
        assert rc == 0
        events = load_trace(trace_path)
        assert events
        assert max(e.time for e in events) <= 0.02 * 86400
        catalog = read_csv(catalog_path)
        assert catalog[0] == ["name", "category", "ttl"]
        assert len(catalog) > 1

    def test_deterministic_for_seed(self, tmp_path):
        a = str(tmp_path / "a.txt")
        b = str(tmp_path / "b.txt")
        argv = ["--days", "0.01", "--rate", "2.0", "--regular-per-tld",
                "3", "--cdn", "3", "--dyn", "3", "--seed", "9"]
        trace_tool.main([a] + argv)
        trace_tool.main([b] + argv)
        assert open(a).read() == open(b).read()


class TestLeasesimTool:
    def test_end_to_end_over_generated_trace(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.txt")
        catalog_path = str(tmp_path / "catalog.csv")
        curves_path = str(tmp_path / "curves.csv")
        trace_tool.main([trace_path, "--days", "0.1", "--rate", "3.0",
                         "--regular-per-tld", "8", "--cdn", "8",
                         "--dyn", "8", "--catalog", catalog_path])
        rc = leasesim_tool.main([trace_path, "--catalog", catalog_path,
                                 "--output", curves_path,
                                 "--fixed-points", "4",
                                 "--dynamic-points", "4"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "Figure 5 readings" in output
        rows = read_csv(curves_path)
        assert rows[0][0] == "scheme"
        schemes = {row[0] for row in rows[1:]}
        assert schemes == {"fixed", "dynamic"}

    def test_empty_trace_fails(self, tmp_path):
        path = str(tmp_path / "empty.txt")
        open(path, "w").write("# nothing\n")
        assert leasesim_tool.main([path]) == 1

    def test_engines_write_identical_curves(self, tmp_path):
        """--engine fast (default) and --engine reference agree byte for
        byte on the emitted CSV."""
        trace_path = str(tmp_path / "trace.txt")
        trace_tool.main([trace_path, "--days", "0.05", "--rate", "3.0",
                         "--regular-per-tld", "6", "--cdn", "6",
                         "--dyn", "6"])
        fast_csv = str(tmp_path / "fast.csv")
        reference_csv = str(tmp_path / "reference.csv")
        assert leasesim_tool.main([trace_path, "--output", fast_csv,
                                   "--fixed-points", "4",
                                   "--dynamic-points", "4"]) == 0
        assert leasesim_tool.main([trace_path, "--output", reference_csv,
                                   "--engine", "reference",
                                   "--fixed-points", "4",
                                   "--dynamic-points", "4"]) == 0
        assert open(fast_csv).read() == open(reference_csv).read()

    def test_columnar_engine_and_shards_byte_stable(self, tmp_path):
        """--engine columnar matches the fast engine byte for byte, and
        --shards N cannot change a single output byte."""
        trace_path = str(tmp_path / "trace.txt")
        trace_tool.main([trace_path, "--days", "0.05", "--rate", "3.0",
                         "--regular-per-tld", "6", "--cdn", "6",
                         "--dyn", "6"])
        outputs = {}
        for tag, argv in (
                ("fast", ["--engine", "fast"]),
                ("columnar", ["--engine", "columnar"]),
                ("shard4", ["--engine", "columnar", "--shards", "4"])):
            csv_path = str(tmp_path / f"{tag}.csv")
            json_path = str(tmp_path / f"{tag}.json")
            assert leasesim_tool.main(
                [trace_path, "--output", csv_path, "--json", json_path,
                 "--fixed-points", "4", "--dynamic-points", "4"]
                + argv) == 0
            outputs[tag] = (open(csv_path).read(), open(json_path).read())
        assert outputs["fast"][0] == outputs["columnar"][0]
        assert outputs["columnar"] == outputs["shard4"]

    def test_shards_require_columnar_engine(self, tmp_path):
        trace_path = str(tmp_path / "trace.txt")
        trace_tool.main([trace_path, "--days", "0.02"])
        assert leasesim_tool.main([trace_path, "--shards", "2"]) == 1
        assert leasesim_tool.main([trace_path, "--shards", "0",
                                   "--engine", "columnar"]) == 1


class TestLeasesimJson:
    def test_json_matches_csv_numbers(self, tmp_path):
        trace_path = str(tmp_path / "trace.txt")
        trace_tool.main([trace_path, "--days", "0.05", "--rate", "3.0",
                         "--regular-per-tld", "6", "--cdn", "6",
                         "--dyn", "6"])
        csv_path = str(tmp_path / "curves.csv")
        json_path = str(tmp_path / "curves.json")
        assert leasesim_tool.main([trace_path, "--output", csv_path,
                                   "--json", json_path,
                                   "--fixed-points", "4",
                                   "--dynamic-points", "4"]) == 0
        document = json.loads(open(json_path).read())
        csv_rows = read_csv(csv_path)[1:]
        assert len(document["rows"]) == len(csv_rows)
        for json_row, csv_row in zip(document["rows"], csv_rows):
            assert json_row["scheme"] == csv_row[0]
            # Identical precision: the JSON floats round-trip the CSV's
            # formatted strings.
            assert json_row["parameter"] == float(csv_row[1])
            assert json_row["storage_pct"] == float(csv_row[2])
            assert json_row["query_rate_pct"] == float(csv_row[3])
            assert json_row["grants"] == int(csv_row[4])
            assert json_row["upstream"] == int(csv_row[5])
        readings = document["readings"]
        assert set(readings) == {"query_rate_at_storage_1pct",
                                 "storage_at_query_rate_20pct"}

    def test_json_output_is_byte_stable(self, tmp_path):
        trace_path = str(tmp_path / "trace.txt")
        trace_tool.main([trace_path, "--days", "0.03", "--rate", "3.0",
                         "--regular-per-tld", "4", "--cdn", "4",
                         "--dyn", "4"])
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        argv = [trace_path, "--fixed-points", "3", "--dynamic-points", "3"]
        assert leasesim_tool.main(argv + ["--json", a]) == 0
        assert leasesim_tool.main(argv + ["--json", b]) == 0
        assert open(a).read() == open(b).read()


class TestObsTool:
    def make_trace(self, tmp_path, name="trace.jsonl", rtt=0.25):
        bus = TraceBus()
        bus.emit("change.detected", t=10.0, seq=1, name="www.example.com.")
        bus.emit("notify.send", t=10.0, seq=1, cache="10.0.0.2:53")
        bus.emit("notify.ack", t=10.0 + rtt, seq=1, rtt=rtt)
        bus.emit("lease.grant", t=1.0, cache="10.0.0.2:53", length=60.0)
        bus.emit("net.deliver", t=10.0, src="a:1", dst="b:53", size=40)
        path = str(tmp_path / name)
        bus.export_jsonl(path)
        return path

    def test_summarize_tables(self, tmp_path, capsys):
        path = self.make_trace(tmp_path)
        assert obs_tool.main(["summarize", path]) == 0
        output = capsys.readouterr().out
        assert "Event counts" in output
        assert "notify.ack" in output
        assert "consistency_window" in output

    def test_summarize_json_to_file(self, tmp_path):
        path = self.make_trace(tmp_path)
        out = str(tmp_path / "summary.json")
        assert obs_tool.main(["summarize", path, "--json",
                              "--output", out]) == 0
        summary = json.loads(open(out).read())
        assert summary["notify"]["acks"] == 1
        assert summary["notify"]["ack_rtt"]["mean"] == 0.25
        assert summary["changes"]["consistency_window"]["sum"] == 0.25
        assert summary["lease"]["grants"] == 1
        assert summary["net"]["delivered"] == 1

    def test_export_csv(self, tmp_path, capsys):
        path = self.make_trace(tmp_path)
        out = str(tmp_path / "events.csv")
        assert obs_tool.main(["export", path, "--output", out]) == 0
        rows = read_csv(out)
        assert rows[0] == ["t", "event", "details"]
        assert len(rows) == 6  # header + 5 events
        assert rows[1][1] == "change.detected"

    def test_diff_identical_and_differing(self, tmp_path, capsys):
        a = self.make_trace(tmp_path, "a.jsonl", rtt=0.25)
        same = self.make_trace(tmp_path, "same.jsonl", rtt=0.25)
        b = self.make_trace(tmp_path, "b.jsonl", rtt=0.5)
        assert obs_tool.main(["diff", a, same]) == 0
        assert "identical" in capsys.readouterr().out
        assert obs_tool.main(["diff", a, b]) == 1
        output = capsys.readouterr().out
        assert "notify.ack_rtt.mean" in output


class TestObsTail:
    """``repro-obs tail``: incremental verdicts over a growing trace."""

    EVENTS = [
        {"t": 0.0, "event": "lease.grant", "cache": "10.0.0.2:53",
         "name": "www.example.com.", "rrtype": "A", "length": 600.0},
        {"t": 10.0, "event": "change.detected", "seq": 1,
         "zone": "example.com.", "name": "www.example.com.",
         "rrtype": "A", "kind": "update"},
        {"t": 10.0, "event": "notify.send", "seq": 1,
         "cache": "10.0.0.2:53", "name": "www.example.com.",
         "rrtype": "A", "id": 101},
        {"t": 10.2, "event": "notify.ack", "seq": 1,
         "cache": "10.0.0.2:53", "name": "www.example.com.",
         "rrtype": "A", "rtt": 0.2},
        {"t": 10.2, "event": "change.settled", "seq": 1, "window": 0.2,
         "acked": 1, "failed": 0},
        {"t": 20.0, "event": "lease.expire", "cache": "10.0.0.2:53",
         "name": "www.example.com.", "rrtype": "A"},
    ]

    def write_trace(self, tmp_path, records=None, name="tail.jsonl"):
        path = tmp_path / name
        lines = "".join(json.dumps(r) + "\n"
                        for r in (self.EVENTS if records is None
                                  else records))
        path.write_text(lines)
        return str(path)

    def test_follower_never_parses_torn_records(self, tmp_path):
        path = tmp_path / "growing.jsonl"
        whole = [json.dumps(r) + "\n" for r in self.EVENTS]
        follower = obs_tool.TraceFollower(str(path))
        # Two complete records plus the first half of a third.
        path.write_text(whole[0] + whole[1] + whole[2][:20])
        assert [name for _t, name, _f in follower.poll()] \
            == ["lease.grant", "change.detected"]
        # Nothing new: the torn record stays buffered, nothing re-read.
        assert follower.poll() == []
        # Completing the torn line plus one more record yields exactly
        # the two unseen events.
        with open(path, "a") as stream:
            stream.write(whole[2][20:] + whole[3])
        assert [name for _t, name, _f in follower.poll()] \
            == ["notify.send", "notify.ack"]

    def test_once_on_clean_trace_exits_zero(self, tmp_path, capsys):
        path = self.write_trace(tmp_path)
        assert obs_tool.main(["tail", path, "--once"]) == 0
        output = capsys.readouterr().out
        assert "events=6" in output
        assert "violations=0" in output
        assert "ok" in output

    def test_json_stream_parses_and_carries_verdict(self, tmp_path,
                                                    capsys):
        path = self.write_trace(tmp_path)
        assert obs_tool.main(["tail", path, "--once", "--json"]) == 0
        lines = [json.loads(line) for line
                 in capsys.readouterr().out.splitlines()]
        assert lines[0]["events"] == 6
        assert lines[0]["window_p95"] is not None
        final = lines[-1]
        assert final["ok"] is True
        assert final["peak_tracked_spans"] >= final["tracked_spans"]

    def test_violation_trace_exits_one(self, tmp_path, capsys):
        records = [dict(self.EVENTS[3], t=1.0)]  # orphan ack
        path = self.write_trace(tmp_path, records)
        assert obs_tool.main(["tail", path, "--once"]) == 1
        assert "causality" in capsys.readouterr().out

    def test_growing_file_accumulates_across_polls(self, tmp_path,
                                                   capsys):
        # Regression for the restart-free follow path: feed the same
        # trace in two chunks through one auditor via --idle-exit.
        path = tmp_path / "grow.jsonl"
        whole = [json.dumps(r) + "\n" for r in self.EVENTS]
        path.write_text("".join(whole[:3]))
        follower = obs_tool.TraceFollower(str(path))
        first = follower.poll()
        with open(path, "a") as stream:
            stream.write("".join(whole[3:]))
        second = follower.poll()
        assert len(first) + len(second) == len(self.EVENTS)
        from repro.obs import IncrementalAuditor
        auditor = IncrementalAuditor()
        auditor.feed_many(first)
        assert not auditor.report().ok  # change still open mid-stream
        auditor.feed_many(second)
        assert auditor.report().ok

    def test_strict_rejects_unknown_events(self, tmp_path, capsys):
        records = [{"t": 0.0, "event": "bogus.event"}]
        path = self.write_trace(tmp_path, records)
        assert obs_tool.main(["--strict", "tail", path, "--once"]) == 2
        assert "bogus.event" in capsys.readouterr().err


class TestProbeTool:
    def test_prints_summary_and_writes_csv(self, tmp_path, capsys):
        out = str(tmp_path / "probe.csv")
        rc = probe_tool.main(["--regular-per-tld", "6", "--cdn", "6",
                              "--dyn", "6", "--max-probes", "120",
                              "--output", out])
        assert rc == 0
        output = capsys.readouterr().out
        assert "DNS dynamics" in output
        rows = read_csv(out)
        assert rows[0][0] == "name"
        assert len(rows) == 1 + 6 * 10 + 6 + 6  # header + population


class TestTestbedTool:
    def test_healthy_run_returns_zero(self, capsys):
        rc = testbed_tool.main(["--zones", "12", "--updates", "3"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "testbed validation" in output
        assert "True" in output

    def test_weak_baseline_runs(self, capsys):
        rc = testbed_tool.main(["--zones", "8", "--updates", "2",
                                "--no-dnscup"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "CACHE-UPDATEs sent" not in output
