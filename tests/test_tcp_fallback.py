"""Tests for truncation (TC) and the reliable-stream (TCP) fallback."""

import pytest

from repro.dnslib import (
    A,
    MAX_UDP_PAYLOAD,
    Message,
    Name,
    Rcode,
    RRType,
    make_query,
    truncate_response,
)
from repro.server import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.zone import load_zone

# A name with enough addresses that the response cannot fit in 512 B.
FAT_ZONE = ("$ORIGIN fat.com.\n$TTL 3600\n"
            "@ IN SOA ns1 admin 1 7200 900 604800 300\n"
            "@ IN NS ns1\nns1 IN A 10.1.0.1\n"
            + "\n".join(f"big IN A 10.3.{i // 200}.{i % 200 + 1}"
                        for i in range(40)) + "\n")

ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.            IN SOA a.root. admin. 1 7200 900 604800 300
.            IN NS a.root.
a.root.      IN A  198.41.0.4
fat.com.     IN NS ns1.fat.com.
ns1.fat.com. IN A  10.1.0.1
"""


@pytest.fixture
def world(make_host, simulator):
    root = AuthoritativeServer(make_host("198.41.0.4"),
                               [load_zone(ROOT_TEXT, origin=Name.root())])
    auth = AuthoritativeServer(make_host("10.1.0.1"), [load_zone(FAT_ZONE)])
    resolver = RecursiveResolver(make_host("10.2.0.1"), [("198.41.0.4", 53)])
    return root, auth, resolver, simulator


class TestTruncateResponse:
    def test_stub_of_truncated_keeps_question(self):
        query = make_query("big.fat.com", RRType.A)
        from repro.dnslib import make_response, ResourceRecord
        response = make_response(query)
        response.answer.extend(
            ResourceRecord("big.fat.com", RRType.A, 60, A(f"10.0.0.{i}"))
            for i in range(1, 50))
        stub = truncate_response(response)
        assert stub.truncated
        assert stub.question == response.question
        assert not stub.answer
        assert stub.wire_size() <= MAX_UDP_PAYLOAD


class TestServerTruncation:
    def test_oversized_response_truncated_on_udp(self, world, make_host):
        _, auth, _, simulator = world
        client = make_host("10.9.0.1").socket()
        query = make_query("big.fat.com", RRType.A, recursion_desired=False)
        responses = []
        client.request(query.to_wire(), ("10.1.0.1", 53), query.id,
                       lambda p, s: responses.append(p))
        simulator.run()
        response = Message.from_wire(responses[0])
        assert response.truncated
        assert not response.answer
        assert auth.stats.truncated == 1

    def test_full_answer_over_stream(self, world, make_host):
        _, auth, _, simulator = world
        client = make_host("10.9.0.2").socket()
        query = make_query("big.fat.com", RRType.A, recursion_desired=False)
        responses = []
        client.request_stream(query.to_wire(), ("10.1.0.1", 53), query.id,
                              lambda p, s: responses.append(p))
        simulator.run()
        response = Message.from_wire(responses[0])
        assert not response.truncated
        assert len(response.answer) == 40
        assert auth.stats.stream_queries == 1

    def test_small_response_not_truncated(self, world, make_host):
        _, auth, _, simulator = world
        client = make_host("10.9.0.3").socket()
        query = make_query("ns1.fat.com", RRType.A, recursion_desired=False)
        responses = []
        client.request(query.to_wire(), ("10.1.0.1", 53), query.id,
                       lambda p, s: responses.append(p))
        simulator.run()
        assert not Message.from_wire(responses[0]).truncated
        assert auth.stats.truncated == 0


class TestResolverFallback:
    def test_resolver_retries_over_stream_and_caches_full_set(self, world):
        _, auth, resolver, simulator = world
        results = []
        resolver.resolve("big.fat.com", RRType.A,
                         lambda recs, rc: results.append((recs, rc)))
        simulator.run()
        records, rcode = results[0]
        assert rcode == Rcode.NOERROR
        assert len([r for r in records if r.rrtype == RRType.A]) == 40
        assert resolver.stats.tcp_fallbacks == 1
        entry = resolver.cache.peek("big.fat.com", RRType.A)
        assert len(entry.rrset) == 40

    def test_network_counted_stream_traffic(self, world):
        _, auth, resolver, simulator = world
        resolver.resolve("big.fat.com", RRType.A, lambda recs, rc: None)
        simulator.run()
        assert resolver.host.network.stats.stream_messages >= 2  # req+resp


class TestStubFallback:
    def test_stub_follows_tc_through_resolver(self, world, make_host):
        """Stub → resolver over UDP truncates; stub retries over stream
        and gets all 40 addresses."""
        _, _, resolver, simulator = world
        stub = StubResolver(make_host("10.9.0.4"), ("10.2.0.1", 53),
                            cache_seconds=0.0)
        results = []
        stub.lookup("big.fat.com", lambda addrs, rc: results.append((addrs, rc)))
        simulator.run()
        addresses, rcode = results[0]
        assert rcode == Rcode.NOERROR
        assert len(addresses) == 40
        assert stub.stats.tcp_fallbacks == 1
