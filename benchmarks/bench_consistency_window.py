"""The headline protocol experiment: consistency window, DNScup vs TTL.

The paper's motivation (§1): after a physical mapping change, weak
(TTL) consistency leaves caches serving the dead address until expiry,
while DNScup closes the window to one round trip.  We run the same
workload + change schedule through the full wire-level system twice and
measure mean/max staleness of the resolver caches and the fraction of
stale client answers.
"""

import pytest

from repro.dnslib import Name
from repro.sim import ProtocolScenario, ScenarioConfig
from repro.traces import (
    CATEGORY_REGULAR,
    DomainSpec,
    PoissonRelocation,
    WorkloadConfig,
)

from benchmarks.conftest import print_table


def hot_relocating_domains(count=8, ttl=3600.0):
    """Long-TTL domains that physically move — the worst case for TTL."""
    domains = []
    for index in range(count):
        process = PoissonRelocation([f"10.60.{index}.1"],
                                    mean_lifetime=600.0, seed=500 + index)
        domains.append(DomainSpec(Name.from_text(f"www.live{index}.com"),
                                  CATEGORY_REGULAR, ttl, 1.0, process))
    return domains


def run_scenario(domains, dnscup_enabled):
    scenario = ProtocolScenario(
        domains, ScenarioConfig(dnscup_enabled=dnscup_enabled,
                                staleness_probe_interval=2.0))
    workload = WorkloadConfig(duration=2400.0, clients=12, nameservers=3,
                              total_request_rate=2.0,
                              client_cache_seconds=0.0, seed=41)
    scenario.run_workload(workload)
    return scenario


def test_consistency_window(benchmark):
    domains = hot_relocating_domains()
    with_cup = benchmark.pedantic(run_scenario, args=(domains, True),
                                  rounds=1, iterations=1)
    without = run_scenario(domains, False)

    rows = []
    for label, scenario in (("DNScup", with_cup), ("TTL only", without)):
        report = scenario.report
        rows.append((label,
                     f"{report.mean_staleness():8.1f}",
                     f"{report.max_staleness():8.1f}",
                     f"{report.stale_answer_ratio:7.2%}",
                     scenario.total_upstream_queries()))
    print_table("Consistency window after physical changes "
                "(TTL 3600 s, mean lifetime 600 s)",
                ("mode", "mean stale (s)", "max stale (s)",
                 "stale answers", "upstream queries"), rows)

    cup_report = with_cup.report
    ttl_report = without.report
    # DNScup's staleness window is network-scale; TTL's is TTL-scale.
    assert cup_report.mean_staleness() < 10.0
    assert ttl_report.mean_staleness() > 60.0
    assert cup_report.mean_staleness() < ttl_report.mean_staleness() / 10.0
    # Clients see (far) fewer stale answers with DNScup.
    assert cup_report.stale_answer_ratio <= \
        ttl_report.stale_answer_ratio / 2.0
    # And DNScup's pushes are fully acknowledged.
    summary = with_cup.dnscup_summary()
    assert summary["acks_received"] == summary["notifications_sent"]
