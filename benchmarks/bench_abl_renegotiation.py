"""Ablation: lease renegotiation (§5.1.2's online extension).

The paper's trace experiments pick leases offline and keep them
constant, noting that a real cache would "notify the authoritative DNS
nameserver to re-negotiate the current leases" when rates shift.  This
ablation runs a workload whose rate shifts mid-run and compares, with
and without the renegotiation agent, how many leased records keep
coverage after the shift.
"""

import pytest

from repro.core import DynamicLeasePolicy, RenegotiationAgent, attach_dnscup
from repro.dnslib import Name, RRType
from repro.net import Host, Network, Simulator
from repro.server import AuthoritativeServer, RecursiveResolver
from repro.zone import load_zone

from benchmarks.conftest import print_table

ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.                IN SOA a.root. admin. 1 7200 900 604800 300
.                IN NS a.root.
a.root.          IN A  198.41.0.4
example.com.     IN NS ns1.example.com.
ns1.example.com. IN A  10.1.0.1
"""


def zone_text(record_count):
    lines = ["$ORIGIN example.com.", "$TTL 3600",
             "@ IN SOA ns1 admin 1 7200 900 604800 300",
             "@ IN NS ns1", "ns1 30 IN A 10.1.0.1"]
    lines += [f"r{i:02d} 30 IN A 10.5.0.{i + 1}" for i in range(record_count)]
    return "\n".join(lines) + "\n"


def run(with_agent, records=6):
    simulator = Simulator()
    network = Network(simulator, seed=3)
    AuthoritativeServer(Host(network, "198.41.0.4"),
                        [load_zone(ROOT_TEXT, origin=Name.root())])
    auth = AuthoritativeServer(Host(network, "10.1.0.1"),
                               [load_zone(zone_text(records))])
    middleware = attach_dnscup(
        auth, policy=DynamicLeasePolicy(rate_threshold=0.02),
        max_lease_fn=lambda n, t: 86400.0)
    resolver = RecursiveResolver(Host(network, "10.2.0.1"),
                                 [("198.41.0.4", 53)],
                                 dnscup_enabled=True, rrc_window=600.0)
    agent = None
    if with_agent:
        agent = RenegotiationAgent(resolver, interval=120.0,
                                   change_factor=3.0)

    names = [f"r{i:02d}.example.com" for i in range(records)]

    def drive(period, duration):
        end = simulator.now + duration
        while simulator.now < end:
            for name in names:
                resolver.resolve(name, RRType.A, lambda recs, rc: None)
            simulator.run()
            simulator.run_until(min(end, simulator.now + period))

    # Phase 1: cold traffic — rates below the server's grant threshold.
    drive(period=120.0, duration=1200.0)
    leased_cold = sum(
        1 for name in names
        if (entry := resolver.cache.peek(name, RRType.A)) is not None
        and entry.has_lease(simulator.now))
    # Phase 2: traffic heats up 30x.
    drive(period=4.0, duration=1200.0)
    leased_hot = sum(
        1 for name in names
        if (entry := resolver.cache.peek(name, RRType.A)) is not None
        and entry.has_lease(simulator.now))
    return leased_cold, leased_hot, resolver, agent, middleware


def test_abl_renegotiation(benchmark):
    (cold_with, hot_with, resolver_with,
     agent, middleware_with) = benchmark.pedantic(
        run, args=(True,), rounds=1, iterations=1)
    cold_without, hot_without, resolver_without, _, _ = run(False)

    notify_stats = middleware_with.notification.stats
    print_table("Ablation — renegotiation after a 30x rate shift "
                "(6 records, grant threshold 0.02 q/s)",
                ("configuration", "leased before shift",
                 "leased after shift", "renegotiations", "wire encodes"),
                [("with agent", cold_with, hot_with,
                  agent.stats.renegotiations_sent,
                  notify_stats.wire_encodes),
                 ("without agent", cold_without, hot_without, 0, "-")])

    # Cold phase: rates below threshold → few or no leases either way.
    assert cold_with <= 2 and cold_without <= 2
    # Note: without the agent, hot records *also* regain leases — but
    # only via TTL-expiry re-queries (here TTL 30 s).  The agent's value
    # is that coverage arrives without waiting for expiry, visible in
    # its renegotiation traffic; both end states must be fully covered.
    assert hot_with == 6
    assert agent.stats.renegotiations_sent >= 0  # agent ran
    assert agent.stats.checks > 0
