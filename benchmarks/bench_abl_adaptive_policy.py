"""Ablation: adaptive grant threshold under a hard storage budget.

The offline optimizers assume stationary rates; real servers face a
bounded lease table and drifting traffic.  This ablation offers the
same shifting workload to three policies on a server whose table holds
only a fraction of the working set:

* a *low* static threshold — grants eagerly, thrashes the full table;
* a *high* static threshold — never fills the table but barely covers;
* the *adaptive* policy — raises its threshold under pressure and
  relaxes when the table drains.

Measured: grant rejections (table-full events) and coverage of the
currently-hot records.
"""

import pytest

from repro.core import (
    AdaptiveBudgetPolicy,
    DNScupConfig,
    DynamicLeasePolicy,
    attach_dnscup,
)
from repro.dnslib import Message, RRType, make_query, make_response
from repro.net import Host, Network, Simulator
from repro.server import AuthoritativeServer
from repro.zone import load_zone

from benchmarks.conftest import print_table

RECORDS = 40
CAPACITY = 10          # the table holds a quarter of the records
PHASES = 6
PHASE_LENGTH = 600.0
HOT_SET = 8


def zone_text():
    lines = ["$ORIGIN load.net.", "$TTL 3600",
             "@ IN SOA ns1 admin 1 7200 900 604800 300",
             "@ IN NS ns1", "ns1 IN A 10.1.0.1"]
    lines += [f"r{i:02d} IN A 10.8.0.{i + 1}" for i in range(RECORDS)]
    return "\n".join(lines) + "\n"


def run_policy(policy_factory, evict=False):
    simulator = Simulator()
    network = Network(simulator, seed=29)
    auth = AuthoritativeServer(Host(network, "10.1.0.1"),
                               [load_zone(zone_text())])
    middleware = attach_dnscup(
        auth, policy=policy_factory(),
        max_lease_fn=lambda n, t: 2 * PHASE_LENGTH,
        config=DNScupConfig(lease_capacity=CAPACITY, rate_window=300.0,
                            evict_under_pressure=evict))
    source = ("10.2.0.1", 40000)
    covered_hot = 0
    hot_checks = 0
    for phase in range(PHASES):
        hot = [(phase * 3 + k) % RECORDS for k in range(HOT_SET)]
        phase_end = simulator.now + PHASE_LENGTH
        while simulator.now < phase_end:
            for index in hot:
                query = make_query(f"r{index:02d}.load.net", RRType.A,
                                   rrc=50)
                auth.handle_query(query, source)
            # Background trickle on two cold records.
            cold_query = make_query(f"r{(phase * 7) % RECORDS:02d}.load.net",
                                    RRType.A, rrc=1)
            auth.handle_query(cold_query, source)
            simulator.run_until(simulator.now + 20.0)
        # Coverage check at phase end: how many hot records are leased?
        now = simulator.now
        for index in hot:
            hot_checks += 1
            holders = middleware.table.holders(f"r{index:02d}.load.net",
                                               RRType.A, now)
            if holders:
                covered_hot += 1
    stats = middleware.listening.stats
    return {
        "grants": stats.grants,
        "table_full": stats.table_full,
        "evictions": stats.evictions,
        "hot_coverage": covered_hot / hot_checks,
        "final_occupancy": len(middleware.table) / CAPACITY,
    }


def test_abl_adaptive_policy(benchmark):
    configurations = {
        "static low (λ*=0.001)": (lambda: DynamicLeasePolicy(0.001), False),
        "static high (λ*=0.5)": (lambda: DynamicLeasePolicy(0.5), False),
        "adaptive": (lambda: AdaptiveBudgetPolicy(0.001), False),
        "eager + eviction": (lambda: DynamicLeasePolicy(0.001), True),
    }
    results = {}
    benchmark.pedantic(run_policy,
                       args=(configurations["eager + eviction"][0],),
                       kwargs={"evict": True}, rounds=1, iterations=1)
    for label, (factory, evict) in configurations.items():
        results[label] = run_policy(factory, evict=evict)

    print_table(f"Ablation — grant policy under a hard budget "
                f"({CAPACITY} leases for {RECORDS} records, "
                f"{HOT_SET} hot at a time)",
                ("policy", "grants", "rejections", "evictions",
                 "hot coverage", "final occupancy"),
                [(label, r["grants"], r["table_full"], r["evictions"],
                  f"{r['hot_coverage']:.0%}", f"{r['final_occupancy']:.0%}")
                 for label, r in results.items()])

    low = results["static low (λ*=0.001)"]
    high = results["static high (λ*=0.5)"]
    adaptive = results["adaptive"]
    evicting = results["eager + eviction"]
    # The eager static policy slams into the budget repeatedly...
    assert low["table_full"] > 100
    # ...the conservative one wastes it entirely...
    assert high["hot_coverage"] < 0.1
    assert high["final_occupancy"] == 0.0
    # ...the adaptive policy respects the budget with minimal thrash
    # but rations coverage (stale leases hold slots)...
    assert adaptive["table_full"] <= low["table_full"] / 10
    # ...and online deprivation (the CLP move) recovers the coverage
    # the budget permits: hot records displace stale cold leases.
    assert evicting["hot_coverage"] >= low["hot_coverage"]
    assert evicting["table_full"] < low["table_full"] / 10
    assert evicting["evictions"] > 0
