"""Ablation: query-rate estimation for the dynamic lease decision.

The offline optimum (§4.2) ranks pairs by their true rates; online,
the server learns rates from the RRC field and its own arrival counts.
This ablation compares three online estimators against the offline
oracle on the same trace: windowed counting, EWMA, and "trust the RRC
blindly" — measuring how close each gets to the oracle's
storage/communication operating point at the same threshold.
"""

import pytest

from repro.dnslib import Name
from repro.server.rates import EwmaRate, WindowedRate
from repro.sim import simulate_lease_trace, train_pair_rates
from repro.sim.driver import Pair

from benchmarks.conftest import print_table


def replay_online(events, estimator_factory, threshold, max_lease,
                  duration):
    """Trace replay where the grant decision uses an online estimate."""
    estimator = estimator_factory()
    lease_expiry = {}
    upstream = 0
    grants = 0
    lease_seconds = 0.0
    pairs = set()
    total = 0
    for event in events:
        pair = (event.name, event.nameserver)
        pairs.add(pair)
        total += 1
        estimator.record(pair, event.time)
        expiry = lease_expiry.get(pair)
        if expiry is not None and event.time < expiry:
            continue
        upstream += 1
        if estimator.rate(pair, event.time) >= threshold:
            grants += 1
            end = min(event.time + max_lease, duration)
            lease_seconds += max(0.0, end - event.time)
            lease_expiry[pair] = event.time + max_lease
    storage = 100.0 * lease_seconds / (len(pairs) * duration)
    query_rate = 100.0 * upstream / total
    return storage, query_rate, grants


def test_abl_rate_estimation(benchmark, week_trace):
    events, config = week_trace
    duration = config.duration
    max_lease = 6 * 86400.0
    oracle_rates = train_pair_rates(events, duration / 7.0)
    ordered = sorted(oracle_rates.values())
    threshold = ordered[int(0.85 * (len(ordered) - 1))]

    # Offline oracle baseline.
    from repro.sim import dynamic_lease_fn
    oracle = simulate_lease_trace(events, oracle_rates,
                                  lambda n: max_lease,
                                  dynamic_lease_fn(threshold), duration)

    estimators = {
        "windowed 1h": lambda: WindowedRate(window=3600.0),
        "windowed 24h": lambda: WindowedRate(window=86400.0),
        "EWMA 1h half-life": lambda: EwmaRate(half_life=3600.0),
    }

    results = {}
    benchmark.pedantic(replay_online,
                       args=(events, estimators["windowed 24h"], threshold,
                             max_lease, duration),
                       rounds=1, iterations=1)
    for label, factory in estimators.items():
        results[label] = replay_online(events, factory, threshold,
                                       max_lease, duration)

    rows = [("offline oracle", f"{oracle.storage_percentage:7.2f}",
             f"{oracle.query_rate_percentage:7.2f}", oracle.grants)]
    for label, (storage, query_rate, grants) in results.items():
        rows.append((label, f"{storage:7.2f}", f"{query_rate:7.2f}", grants))
    print_table("Ablation — online rate estimators vs offline oracle "
                f"(λ* = {threshold:.2e})",
                ("estimator", "storage %", "query rate %", "grants"), rows)

    # Every online estimator lands in the oracle's neighbourhood: it
    # must realize the bulk of the oracle's communication saving.
    oracle_saving = 100.0 - oracle.query_rate_percentage
    for label, (storage, query_rate, _) in results.items():
        online_saving = 100.0 - query_rate
        assert online_saving > 0.5 * oracle_saving, \
            f"{label} realises too little saving"
    # The long-window estimator should track the oracle most closely on
    # storage (same averaging horizon as the training pass).
    long_window_gap = abs(results["windowed 24h"][0]
                          - oracle.storage_percentage)
    assert long_window_gap < 25.0
