"""Renewal storm: one mapping change into 10^5 synchronized holders.

The classic strong-consistency failure mode the paper's §4.2 budgets
exist to contain: a large holder population whose leases synchronize,
renewing in one burst and then all receiving the CACHE-UPDATE fan-out
for a single mapping change.  The bench drives that scenario through
the *real* middleware (lease table, detection, notification, simulated
network) with the load-attribution plane armed, and holds the run to
four commitments:

* **attribution** — the :class:`repro.obs.load.LoadLedger` must see the
  full query/renewal/notify/retransmit mix through the per-server
  recorder hooks, and its ``peak_p99_server_load`` (the server's
  fast-window rate-sketch p99) must be positive;
* **storm detection** — the :class:`repro.obs.load.StormDetector` must
  flag at least one renewal-synchronization episode (the synchronized
  renewal burst and the notify fan-out each qualify);
* **audit** — the full protocol audit (completeness, termination,
  causality) over the run's trace must report zero violations;
* **shard invariance** — the columnar load reduction
  (:func:`repro.sim.sharded_load_metrics`) must export byte-identical
  registries at 1, 2, and 8 shards, and a process-pool reduction must
  match the serial one bit for bit.

Any mismatch counts as an *audit violation*; the run fails unless there
are zero.  The full-scale run (10^5 holders) writes ``BENCH_storm.json``
at the repo root; CI re-runs a scaled-down smoke (10^3 holders) through
the same code path.

Run full scale:     python benchmarks/bench_renewal_storm.py
Run the CI smoke:   python benchmarks/bench_renewal_storm.py \
                        --holders 1000 --json /tmp/storm_smoke.json \
                        --min-events-per-sec 500
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

from repro.core import DNScupConfig, DynamicLeasePolicy, attach_dnscup
from repro.dnslib import (Message, RRType, WireFormatError,
                          make_cache_update_ack)
from repro.net import Host, Network, RetryPolicy, Simulator
from repro.obs import Observability, audit_observability
from repro.server import AuthoritativeServer
from repro.sim import flash_crowd_columnar, sharded_load_metrics
from repro.zone import load_zone

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_storm.json"

#: The full-scale acceptance floor this PR establishes (load-ledger
#: events attributed per wall-clock second, end to end through the
#: simulated protocol run); regressions must stay above it.
MIN_EVENTS_PER_SEC = 2_000

HOLDERS = 100_000

#: Phase schedule (simulated seconds): grants spread over the first
#: window establish the decayed baseline; every holder then renews in
#: one synchronized instant; the mapping change lands a minute later.
GRANT_WINDOW = 300.0
GRANT_BATCHES = 200
RENEW_AT = 600.0
CHANGE_AT = 660.0
LEASE_LENGTH = 3600.0

#: A retransmit timeout below the simulated RTT (2 x 10 ms) forces one
#: deliberate retransmission per notify leg before the ack lands, so
#: the retransmit message class shows real storm traffic.
NOTIFY_RETRY = RetryPolicy(initial_timeout=0.015, max_attempts=4)

ZONE_TEXT = """\
$ORIGIN example.com.
$TTL 3600
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.1.0.1
www  IN A   10.0.0.10
"""

SERVER_ADDRESS = "10.1.0.1"
LEASED_NAME = "www.example.com"

#: The sharded-reduction invariance check: a synthetic flash-crowd
#: columnar trace, reduced at these shard counts.
SHARD_COUNTS = (1, 2, 8)
SHARD_TRACE_CACHES = 4_000


def holder_endpoint(index: int) -> Tuple[str, int]:
    """A unique /16-packed holder address; port 53 like a resolver."""
    return (f"172.{16 + (index >> 16)}.{(index >> 8) & 255}.{index & 255}",
            53)


def bind_echo_holders(network: Network, count: int) -> None:
    """Bind ``count`` minimal ack-answering lease holders.

    Each holder parses the incoming CACHE-UPDATE and returns the real
    protocol acknowledgement (:func:`repro.dnslib.make_cache_update_ack`
    — same message ID, response bit set), which the notification
    module's pending-request matcher settles on.  Responses (QR bit
    already set, e.g. a duplicate ack bounced off the server) are
    ignored, so nothing can ping-pong.
    """
    def on_datagram(payload: bytes, src, dst) -> None:
        if len(payload) < 3 or payload[2] & 0x80:
            return
        try:
            update = Message.from_wire(payload)
        except WireFormatError:
            return
        network.send(make_cache_update_ack(update).to_wire(), dst, src)

    for index in range(count):
        network.bind(holder_endpoint(index), on_datagram)


def audit_shard_invariance() -> int:
    """Byte-compare the columnar load reduction across shard counts.

    Returns the number of mismatched exports (serial 1/2/8 shards must
    all agree, and the 2-shard process-pool run must equal serial).
    """
    trace, _max_lease = flash_crowd_columnar(
        caches=SHARD_TRACE_CACHES, regular_domains=SHARD_TRACE_CACHES // 5,
        duration=86400.0, hot_domains=2, base_rate=2.0 / 86400.0,
        flash_rate=8.0 / 86400.0, cache_fanout=1, seed=2006)

    def export(nshards: int, processes: Optional[int] = None) -> str:
        registry = sharded_load_metrics(trace, nshards, processes=processes)
        buffer = io.StringIO()
        registry.export_json(buffer)
        return buffer.getvalue()

    serial = {n: export(n) for n in SHARD_COUNTS}
    violations = 0
    if len(set(serial.values())) != 1:
        violations += 1
    if export(2, processes=2) != serial[2]:
        violations += 1
    return violations


def run_storm_bench(holders: int, min_events_per_sec: float,
                    json_path: Optional[Path] = None) -> dict:
    """One full bench run: grant, synchronize, change, audit, record."""
    started = time.perf_counter()
    simulator = Simulator()
    obs = Observability.for_simulator(simulator, trace_capacity=1 << 21)
    ledger = obs.enable_load()
    network = Network(simulator, seed=2006)
    obs.observe_network(network)
    zone = load_zone(ZONE_TEXT)
    server = AuthoritativeServer(Host(network, SERVER_ADDRESS), [zone])
    middleware = attach_dnscup(
        server, policy=DynamicLeasePolicy(0.0),
        config=DNScupConfig(observability=obs, notify_retry=NOTIFY_RETRY,
                            lease_capacity=2 * holders))
    bind_echo_holders(network, holders)

    # Phase 1: grants spread across the window build the slow baseline.
    batch = max(1, holders // GRANT_BATCHES)
    granted = 0
    while granted < holders:
        simulator.run_until(GRANT_WINDOW * granted / holders)
        for index in range(granted, min(granted + batch, holders)):
            middleware.table.grant(holder_endpoint(index), LEASED_NAME,
                                   RRType.A, now=simulator.now,
                                   length=LEASE_LENGTH)
        granted += batch

    # Phase 2: every holder renews in one synchronized instant.
    simulator.run_until(RENEW_AT)
    for index in range(holders):
        middleware.table.grant(holder_endpoint(index), LEASED_NAME,
                               RRType.A, now=simulator.now,
                               length=LEASE_LENGTH)

    # Phase 3: one mapping change fans CACHE-UPDATEs to every holder.
    simulator.run_until(CHANGE_AT)
    zone.replace_address(LEASED_NAME, ["10.0.0.99"])
    simulator.run()
    ledger.detector.close_open(simulator.now)
    elapsed = time.perf_counter() - started

    server_id = f"{SERVER_ADDRESS}:53"
    stats = middleware.notification.stats
    events_per_sec = ledger.total / elapsed
    peak_p99 = ledger.server_quantile(server_id, 99.0, "rate")

    audit = audit_observability(obs)
    audit_violations = len(audit.violations)
    shard_mismatches = audit_shard_invariance()
    audit_violations += shard_mismatches

    episodes = ledger.detector.episodes
    record = {
        "bench": "renewal_storm",
        "holders": holders,
        "ledger_events": ledger.total,
        "grants": middleware.table.stats.grants,
        "renewals": middleware.table.stats.renewals,
        "notifications_sent": stats.notifications_sent,
        "retransmissions": stats.retransmissions,
        "acks_received": stats.acks_received,
        "elapsed_seconds": round(elapsed, 3),
        "events_per_sec": round(events_per_sec),
        "peak_p99_server_load": round(0.0 if peak_p99 is None else peak_p99,
                                      3),
        "peak_rate": round(ledger.peak_rate(), 3),
        "storm_episodes": len(episodes),
        "storm_peak_rates": [round(episode.peak_rate, 3)
                             for episode in episodes],
        "audit_checks": dict(audit.checks),
        "shards_checked": list(SHARD_COUNTS),
        "shard_mismatches": shard_mismatches,
        "audit_violations": audit_violations,
        "min_events_per_sec": min_events_per_sec,
    }
    if json_path is not None:
        json_path.write_text(json.dumps(record, indent=2) + "\n")

    print(f"\n== Renewal storm — {holders:,} synchronized holders ==")
    print(f"  attribution     {ledger.total:,} ledger events "
          f"({stats.notifications_sent:,} notifies, "
          f"{stats.retransmissions:,} retransmits, "
          f"{stats.acks_received:,} acks)")
    print(f"  throughput      {events_per_sec:12,.0f} events/s "
          f"(floor {min_events_per_sec:,.0f})")
    print(f"  peak p99 load   {record['peak_p99_server_load']:,.0f} "
          f"events/s on {server_id}")
    print(f"  storms          {len(episodes)} episodes "
          f"(peaks {record['storm_peak_rates']})")
    print(f"  audit           {audit_violations} violations "
          f"(protocol audit + shard invariance)")
    if json_path is not None:
        print(f"  record          {json_path}")
    return record


def check_record(record: dict) -> List[str]:
    """The failure messages a run's record earns (empty = pass)."""
    failures = []
    if record["events_per_sec"] < record["min_events_per_sec"]:
        failures.append(
            f"throughput {record['events_per_sec']:,} events/s below the "
            f"floor {record['min_events_per_sec']:,}")
    if record["storm_episodes"] < 1:
        failures.append("no storm episode detected (expected >= 1)")
    if record["peak_p99_server_load"] <= 0.0:
        failures.append("peak p99 server load not positive")
    if record["acks_received"] < record["holders"]:
        failures.append(
            f"only {record['acks_received']:,} of {record['holders']:,} "
            f"holders acked the fan-out")
    if record["audit_violations"]:
        failures.append(
            f"{record['audit_violations']} audit violations (expected 0)")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Synchronized renewal-storm benchmark.")
    parser.add_argument("--holders", type=int, default=HOLDERS)
    parser.add_argument("--min-events-per-sec", type=float,
                        default=MIN_EVENTS_PER_SEC)
    parser.add_argument("--json", type=Path, default=None,
                        help="record path (default: BENCH_storm.json at "
                             "the repo root for a full-scale run, none "
                             "otherwise)")
    args = parser.parse_args(argv)
    json_path = args.json
    if json_path is None and args.holders >= HOLDERS:
        json_path = BENCH_JSON
    record = run_storm_bench(args.holders, args.min_events_per_sec,
                             json_path)
    failures = check_record(record)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_storm_smoke():
    """Pytest entry: the CI-sized smoke through the same code path."""
    record = run_storm_bench(1_000, min_events_per_sec=500)
    assert check_record(record) == []
    assert record["renewals"] >= 1_000


if __name__ == "__main__":
    sys.exit(main())
