"""§4.1: lease-length effectiveness — the analytical model.

Sweeps the lease probability P = t/(t + 1/λ) (Eq. 4.1) and renewal
message rate M = 1/(t + 1/λ) (Eq. 4.2) over lease lengths and query
rates, verifies the constant trade-off ΔM/ΔP = λ that justifies the
greedy algorithms, and cross-validates the closed forms against the
event-driven trace simulator.  The benchmarked unit is a model sweep.
"""

import random

import pytest

from repro.core import lease_probability, renewal_rate, tradeoff_ratio
from repro.dnslib import Name
from repro.sim import fixed_lease_fn, simulate_lease_trace
from repro.traces import QueryEvent

from benchmarks.conftest import print_table

RATES = (0.001, 0.01, 0.1, 1.0)
LEASE_LENGTHS = (0.0, 10.0, 100.0, 1000.0, 10_000.0)


def sweep():
    return [(lam, t, lease_probability(t, lam), renewal_rate(t, lam))
            for lam in RATES for t in LEASE_LENGTHS]


def test_sec41_lease_model(benchmark):
    table = benchmark(sweep)

    rows = [(f"{lam:g}", f"{t:g}", f"{p:.4f}", f"{m:.6f}")
            for lam, t, p, m in table]
    print_table("§4.1 — lease probability P and renewal rate M",
                ("λ (q/s)", "lease t (s)", "P = t/(t+1/λ)",
                 "M = 1/(t+1/λ)"), rows)

    # The identity behind the greedy algorithms: ΔM/ΔP = λ, for every
    # rate and every lease-length change.
    for lam in RATES:
        for t1, t2 in ((0.0, 10.0), (10.0, 1000.0), (500.0, 501.0)):
            assert tradeoff_ratio(t1, t2, lam) == pytest.approx(lam, rel=1e-6)

    # Extremes (§5.1.2's two extreme cases): t=0 → polling at λ; t→inf
    # → P→1, M→0.
    for lam in RATES:
        assert renewal_rate(0.0, lam) == pytest.approx(lam)
        assert lease_probability(1e12, lam) == pytest.approx(1.0, abs=1e-6)
        assert renewal_rate(1e12, lam) < 1e-9


def test_sec41_model_matches_event_simulation(benchmark):
    """Closed forms vs the discrete replay, per (λ, t) cell."""
    def run_cell(lam, lease, duration=200_000.0):
        rng = random.Random(int(lam * 1000) + int(lease))
        t, events = 0.0, []
        name = Name.from_text("model.x.com")
        while t < duration:
            t += rng.expovariate(lam)
            events.append(QueryEvent(t, 0, name, 0))
        result = simulate_lease_trace(events, {}, lambda n: lease,
                                      fixed_lease_fn(lease), duration)
        return result, len(events)

    result, _ = benchmark(run_cell, 0.05, 100.0)

    rows = []
    for lam in (0.02, 0.1):
        for lease in (50.0, 500.0):
            result, count = run_cell(lam, lease)
            model_m = renewal_rate(lease, lam)
            sim_m = result.upstream_messages / result.duration
            model_p = lease_probability(lease, lam)
            sim_p = result.storage_percentage / 100.0
            rows.append((f"{lam:g}", f"{lease:g}",
                         f"{model_m:.5f}", f"{sim_m:.5f}",
                         f"{model_p:.3f}", f"{sim_p:.3f}"))
            assert sim_m == pytest.approx(model_m, rel=0.1)
            assert sim_p == pytest.approx(model_p, rel=0.1)
    print_table("§4.1 — closed form vs event-driven simulation",
                ("λ", "t", "M model", "M sim", "P model", "P sim"), rows)
