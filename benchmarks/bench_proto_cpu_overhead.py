"""§5.2: computation overhead of DNScup vs plain TTL DNS.

The paper reports "the difference in computation overhead between TTL
and DNScup is hardly noticeable".  We measure the per-query server-side
handling cost with and without the middleware attached (same zone, same
query mix), and the marginal cost of the lease-decision path itself.
"""

import pytest

from repro.core import DynamicLeasePolicy, attach_dnscup
from repro.dnslib import Message, RRType, make_query
from repro.net import Host, Network, Simulator
from repro.server import AuthoritativeServer
from repro.zone import load_zone

from benchmarks.conftest import print_table

ZONE_TEXT = """\
$ORIGIN bench.com.
$TTL 3600
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.1.0.1
""" + "\n".join(f"h{i:03d} IN A 10.2.{i // 250}.{i % 250}"
                for i in range(500)) + "\n"


def build_server(dnscup_enabled):
    simulator = Simulator()
    network = Network(simulator, seed=1)
    server = AuthoritativeServer(Host(network, "10.1.0.1"),
                                 [load_zone(ZONE_TEXT)])
    if dnscup_enabled:
        attach_dnscup(server, policy=DynamicLeasePolicy(rate_threshold=0.0))
    queries = [make_query(f"h{i % 500:03d}.bench.com", RRType.A,
                          rrc=10 if dnscup_enabled else None)
               for i in range(500)]
    source = ("10.2.0.1", 40000)
    return server, queries, source


def handle_all(server, queries, source):
    for query in queries:
        server.handle_query(query, source)


@pytest.mark.parametrize("dnscup_enabled", [False, True],
                         ids=["ttl-only", "dnscup"])
def test_proto_cpu_overhead(benchmark, dnscup_enabled):
    server, queries, source = build_server(dnscup_enabled)
    benchmark(handle_all, server, queries, source)


def test_proto_cpu_overhead_comparison(benchmark):
    """Direct side-by-side timing with the ratio the paper claims."""
    import time

    def measure(dnscup_enabled, repeats=30):
        server, queries, source = build_server(dnscup_enabled)
        handle_all(server, queries, source)  # warm up
        start = time.perf_counter()
        for _ in range(repeats):
            handle_all(server, queries, source)
        return (time.perf_counter() - start) / (repeats * len(queries))

    ttl_cost = measure(False)
    cup_cost = benchmark.pedantic(measure, args=(True,), rounds=1,
                                  iterations=1)
    ratio = cup_cost / ttl_cost
    print_table("§5.2 — per-query CPU cost",
                ("configuration", "µs/query"),
                [("TTL only", f"{ttl_cost * 1e6:.2f}"),
                 ("DNScup", f"{cup_cost * 1e6:.2f}"),
                 ("overhead ratio", f"{ratio:.2f}x")])
    # "Hardly noticeable": the middleware path costs well under 2x on
    # the same query stream (the paper observed no visible difference).
    assert ratio < 2.0
