"""Shared fixtures for the benchmark/reproduction harness.

Each ``bench_*`` module regenerates one table or figure of the paper.
Heavy inputs (domain populations, week-long query traces, probe
campaigns) are session-scoped so the whole suite builds them once.

Run with output visible:

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.measurement import DnsDynamicsProber, oracle_from_specs
from repro.traces import (
    PopulationConfig,
    WorkloadConfig,
    assign_global_zipf,
    generate_population,
    generate_queries,
    generate_requests,
)


@pytest.fixture(scope="session")
def population():
    """The §3.1-style domain collection, shrunk to bench scale.

    Popularity is one global Zipf (exponent 1.1) so trace-driven rate
    heterogeneity matches real DNS traffic concentration.
    """
    domains = generate_population(PopulationConfig(
        regular_per_tld=40, cdn_count=30, dyn_count=30, seed=2006))
    return assign_global_zipf(domains, exponent=1.1, seed=99)


@pytest.fixture(scope="session")
def probe_results(population):
    """The Table 1 probing campaign (probe count capped for speed; the
    cap preserves per-class sampling resolutions, so change frequencies
    are unbiased)."""
    prober = DnsDynamicsProber(oracle_from_specs(population),
                               max_probes_per_domain=800)
    return prober.run_campaign(population)


@pytest.fixture(scope="session")
def workload_config():
    """A scaled stand-in for the paper's one-week / 3-nameserver trace:
    one simulated day, 3 nameservers, first ~1/7 used for rate training
    (matching the paper's first-day-of-seven methodology)."""
    return WorkloadConfig(duration=86400.0, clients=120, nameservers=3,
                          total_request_rate=1.2,
                          client_cache_seconds=900.0, seed=20030702)


@pytest.fixture(scope="session")
def query_trace(population, workload_config):
    """The nameserver-visible query stream (client-cache thinned)."""
    return list(generate_queries(population, workload_config))


@pytest.fixture(scope="session")
def request_trace(population, workload_config):
    """The raw client request stream (before client caching) — the
    input Figure 4's caching-period sweep re-thins."""
    config = workload_config
    # A shorter horizon is enough for CV statistics and keeps the raw
    # (unthinned) stream at a manageable size.
    import dataclasses
    short = dataclasses.replace(config, duration=6 * 3600.0)
    return list(generate_requests(population, short)), short


@pytest.fixture(scope="session")
def week_trace(population):
    """A one-week, three-nameserver query trace — the §5.1 setting.

    Week-long so the six-day regular-domain lease cap binds the storage
    axis the way it does in the paper (storage bounded near 60 %).
    """
    config = WorkloadConfig(duration=7 * 86400.0, clients=120,
                            nameservers=3, total_request_rate=0.4,
                            client_cache_seconds=900.0, seed=19730702)
    return list(generate_queries(population, config)), config


def print_table(title, header, rows):
    """Uniform table rendering for every bench's reproduction output."""
    print(f"\n== {title} ==")
    print("  " + "  ".join(header))
    for row in rows:
        print("  " + "  ".join(str(cell) for cell in row))
