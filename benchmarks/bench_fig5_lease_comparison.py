"""Figure 5: fixed-length vs dynamic lease — the paper's main result.

Trace-driven simulation over a one-week query trace (rates trained on
the first day, as in §5.1): for every lease scheme we replay the trace
and measure the two §5.1.2 metrics,

* storage percentage  — leases held / maximum grantable (time-averaged),
* query rate percentage — upstream messages / pure-polling messages,

then print both curves and the paper's two headline readings:

* Figure 5(a): at query-rate 20 %, dynamic needs ~19 % storage where
  fixed needs ~47 % (a ~60 % storage reduction);
* Figure 5(b): at storage 1 %, dynamic sends ~56 % of polling traffic
  where fixed sends ~88 % (a ~36 % communication reduction).

Absolute numbers shift with the synthetic trace; the assertions check
the relationships (who wins, and by a material factor).

The sweep runs on the pair-indexed fast replay engine (the
``figure5_curves`` default); one operating point is re-run through the
reference oracle to witness the engines' bit-identity in situ (the full
cross-check lives in ``bench_perf_replay`` and
``tests/test_fastreplay.py``).
"""

import pytest

from repro.sim import (
    default_max_lease_of,
    figure5_curves,
    fixed_lease_fn,
    interpolate_at_query_rate,
    interpolate_at_storage,
    logspace,
    simulate_lease_trace,
    train_pair_rates,
)

from benchmarks.conftest import print_table

FIXED_LENGTHS = logspace(10.0, 6 * 86400.0, 12)


def run_figure5(week_trace, population):
    events, config = week_trace
    rates = sorted(train_pair_rates(events, config.duration / 7.0).values())
    quantiles = (0.05, 0.2, 0.4, 0.6, 0.75, 0.9, 0.95,
                 0.98, 0.99, 0.995, 0.999)
    thresholds = ([0.0]
                  + [rates[int(q * (len(rates) - 1))] for q in quantiles]
                  + [rates[-1] * 2.0])
    return figure5_curves(
        events, population, config.duration,
        fixed_lengths=FIXED_LENGTHS,
        rate_thresholds=thresholds, engine="fast")


def test_fig5_fixed_vs_dynamic_lease(benchmark, week_trace, population):
    curves = benchmark.pedantic(run_figure5, args=(week_trace, population),
                                rounds=1, iterations=1)

    rows = [(f"fixed t={r.parameter:9.0f}s", f"{r.storage_percentage:7.2f}",
             f"{r.query_rate_percentage:7.2f}") for r in curves.fixed]
    rows += [(f"dyn   λ*={r.parameter:.2e}", f"{r.storage_percentage:7.2f}",
              f"{r.query_rate_percentage:7.2f}") for r in curves.dynamic]
    rows.append(("polling (no lease)", "   0.00", " 100.00"))
    print_table("Figure 5 — lease scheme operating points",
                ("scheme", "storage %", "query rate %"), rows)

    fixed_points = curves.fixed_points()
    dynamic_points = curves.dynamic_points()

    # -- Figure 5(a) reading: storage needed at query-rate 20 % ----------
    fixed_at_20 = interpolate_at_query_rate(fixed_points, 20.0)
    dynamic_at_20 = interpolate_at_query_rate(dynamic_points, 20.0)
    print(f"\nFigure 5(a) reading — storage needed for query rate 20%:")
    print(f"  fixed   {fixed_at_20:6.2f} %   (paper: 47 %)")
    print(f"  dynamic {dynamic_at_20:6.2f} %   (paper: 19 %, a 60 % saving)")
    saving = 1.0 - dynamic_at_20 / fixed_at_20
    print(f"  measured storage saving: {saving:.0%}")

    # -- Figure 5(b) reading: query rate at storage 1 % ------------------
    fixed_at_1 = interpolate_at_storage(fixed_points, 1.0)
    dynamic_at_1 = interpolate_at_storage(dynamic_points, 1.0)
    print(f"\nFigure 5(b) reading — query rate at storage 1%:")
    print(f"  fixed   {fixed_at_1:6.2f} %   (paper: 88 %)")
    print(f"  dynamic {dynamic_at_1:6.2f} %   (paper: 56 %, a 36 % saving)")

    # -- shape assertions -------------------------------------------------
    # Dynamic dominates fixed at both of the paper's operating points.
    assert dynamic_at_20 < fixed_at_20 * 0.75, \
        "dynamic lease should need much less storage at query rate 20%"
    assert dynamic_at_1 < fixed_at_1 - 5.0, \
        "dynamic lease should save communication at storage 1%"
    # The fixed curve is a proper trade-off frontier.
    storages = [s for s, _ in fixed_points]
    rates = [q for _, q in fixed_points]
    assert storages == sorted(storages)
    assert rates == sorted(rates, reverse=True)
    # Storage stays bounded well below 100 % (paper: ~60 % bound, since
    # only a portion of records hold valid leases at a time).
    assert max(s for s, _ in fixed_points + dynamic_points) < 90.0
    # Polling baseline.
    assert curves.polling.query_rate_percentage == 100.0

    # -- oracle spot-check ------------------------------------------------
    # One fixed operating point re-run through the reference replay must
    # reproduce the fast engine's result bit for bit.
    events, config = week_trace
    ordered = sorted(events, key=lambda e: e.time)
    rates = train_pair_rates(ordered, config.duration / 7.0)
    mid = FIXED_LENGTHS[len(FIXED_LENGTHS) // 2]
    oracle = simulate_lease_trace(
        ordered, rates, default_max_lease_of(population),
        fixed_lease_fn(mid), config.duration,
        scheme="fixed", parameter=mid)
    assert oracle == curves.fixed[len(FIXED_LENGTHS) // 2]
