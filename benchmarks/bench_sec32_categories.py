"""§3.2 per-category / per-provider dynamics.

The paper reads off its measurements:

* CDN domains change frequently — "Akamai with TTL 20 seconds" shows
  change frequencies "around 10 %", "Speedera with TTL 120 seconds"
  shows frequencies "close to 100 %";
* Dyn domains barely change — "0.4 % with TTL larger than or equal to
  300 seconds; and close to zero with TTL less than 300 seconds";
* regular domains rarely change at all.

This bench regenerates exactly that per-group breakdown.
"""

import pytest

from repro.measurement import summarize_groups
from repro.traces import (
    CATEGORY_CDN,
    CATEGORY_DYN,
    CATEGORY_REGULAR,
)

from benchmarks.conftest import print_table


def group_labels(population):
    """Domain → label maps for category and for CDN provider."""
    categories = {}
    providers = {}
    for domain in population:
        categories[domain.name] = domain.category
        if domain.provider is not None:
            providers[domain.name] = domain.provider
        if domain.category == CATEGORY_DYN:
            tier = "dyn ttl>=300" if domain.ttl >= 300 else "dyn ttl<300"
            providers[domain.name] = tier
    return categories, providers


def test_sec32_categories(benchmark, population, probe_results):
    categories, providers = group_labels(population)
    by_category = benchmark(summarize_groups, probe_results, categories)
    by_provider = summarize_groups(probe_results, providers)

    rows = [(label, summary.domains,
             f"{summary.mean_change_frequency:.2%}",
             f"{summary.changed_share:.0%}")
            for label, summary in {**by_category, **by_provider}.items()]
    print_table("§3.2 — per-category and per-provider change dynamics",
                ("group", "domains", "mean change freq", "changed share"),
                rows)

    # CDN >> regular and Dyn in change frequency.
    assert by_category[CATEGORY_CDN].mean_change_frequency > \
        5 * by_category[CATEGORY_REGULAR].mean_change_frequency
    assert by_category[CATEGORY_CDN].mean_change_frequency > \
        5 * by_category[CATEGORY_DYN].mean_change_frequency

    # Akamai ≈10 %, Speedera ≈100 % (§3.2's provider contrast).
    akamai = by_provider["akamai"].mean_change_frequency
    speedera = by_provider["speedera"].mean_change_frequency
    assert 0.03 < akamai < 0.30, f"akamai {akamai:.2%}"
    assert speedera > 0.80, f"speedera {speedera:.2%}"
    assert speedera > 5 * akamai

    # Dyn: low but nonzero at TTL >= 300 s, near zero below.
    slow_dyn = by_provider["dyn ttl>=300"].mean_change_frequency
    fast_dyn = by_provider["dyn ttl<300"].mean_change_frequency
    assert slow_dyn > fast_dyn
    assert fast_dyn < 0.005
