"""Comparison: TTL polling vs DNScup dynamic lease vs DNS-Push.

DNS Push Notifications (RFC 8765, a decade after the paper) achieve
strong consistency through *permanent subscriptions*.  This bench puts
all three consistency mechanisms on the same trace and measures the two
§5.1.2 axes plus push traffic:

* **polling** — weak consistency; no server state, maximal queries;
* **dynamic lease (DNScup)** — server state decays with interest;
  renewal queries only when a lease lapses and interest persists;
* **subscription (Push)** — one subscription per pair that *ever*
  appears, held forever: minimal queries, maximal state, plus steady
  keepalive traffic.

The point the paper's design makes — the dynamic lease sits between
the extremes and is *tunable* along the whole frontier — falls out of
the numbers.
"""

import pytest

from repro.sim import dynamic_lease_fn, no_lease_fn, simulate_lease_trace, train_pair_rates

from benchmarks.conftest import print_table

#: RFC 8765 recommends keepalives on the order of tens of minutes.
KEEPALIVE_INTERVAL = 1800.0


def simulate_subscriptions(events, duration, keepalive_interval):
    """Replay under permanent per-pair subscriptions.

    Each pair subscribes at its first query (one upstream message) and
    never lets go; every later query is served locally.  Connections
    (one per nameserver here, as each nameserver is one subscriber box)
    carry periodic keepalives.
    """
    first_seen = {}
    connections = set()
    for event in events:
        pair = (event.name, event.nameserver)
        if pair not in first_seen:
            first_seen[pair] = event.time
        connections.add(event.nameserver)
    subscribe_messages = len(first_seen)
    # State-seconds held: from first query to end of trace.
    state_seconds = sum(duration - t0 for t0 in first_seen.values())
    keepalives = sum(int((duration - 0.0) / keepalive_interval)
                     for _ in connections)
    total_queries = len(events)
    return {
        "upstream": subscribe_messages,
        "keepalives": keepalives,
        "storage_pct": 100.0 * state_seconds / (len(first_seen) * duration),
        "query_rate_pct": 100.0 * subscribe_messages / total_queries,
    }


def test_comp_push_vs_lease(benchmark, week_trace):
    events, config = week_trace
    duration = config.duration
    rates = train_pair_rates(events, duration / 7.0)
    ordered = sorted(rates.values())
    threshold = ordered[int(0.6 * (len(ordered) - 1))]

    polling = simulate_lease_trace(events, rates, lambda n: 6 * 86400.0,
                                   no_lease_fn(), duration, scheme="polling")
    lease = benchmark.pedantic(
        simulate_lease_trace,
        args=(events, rates, lambda n: 6 * 86400.0,
              dynamic_lease_fn(threshold), duration),
        kwargs={"scheme": "dnscup"}, rounds=1, iterations=1)
    push = simulate_subscriptions(events, duration, KEEPALIVE_INTERVAL)

    rows = [
        ("TTL polling", f"{polling.storage_percentage:7.2f}",
         f"{polling.query_rate_percentage:7.2f}",
         polling.upstream_messages, 0, "weak"),
        ("DNScup dynamic lease", f"{lease.storage_percentage:7.2f}",
         f"{lease.query_rate_percentage:7.2f}",
         lease.upstream_messages, 0, "strong (leased pairs)"),
        ("DNS-Push subscriptions", f"{push['storage_pct']:7.2f}",
         f"{push['query_rate_pct']:7.2f}",
         push["upstream"], push["keepalives"], "strong (all pairs)"),
    ]
    print_table("Polling vs dynamic lease vs permanent subscriptions "
                f"(1-week trace, {len(events)} queries)",
                ("scheme", "storage %", "query rate %", "upstream msgs",
                 "keepalives", "consistency"), rows)

    # The frontier ordering: polling has zero state and max traffic;
    # subscriptions have max state and min query traffic; the dynamic
    # lease sits strictly between on both axes.
    assert polling.storage_percentage == 0.0
    assert polling.query_rate_percentage == 100.0
    assert 0.0 < lease.storage_percentage < push["storage_pct"]
    assert push["query_rate_pct"] < lease.query_rate_percentage < 100.0
    # Push state is near-permanent (most pairs appear early in a week).
    assert push["storage_pct"] > 75.0
    # And Push's keepalive stream is real standing traffic the lease
    # scheme does not pay.
    assert push["keepalives"] > 0
