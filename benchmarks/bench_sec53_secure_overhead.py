"""§5.3: secure DNScup — the cost of signing CACHE-UPDATE exchanges.

The paper transmits DNScup messages "in plain text for simplicity and
efficiency" and defers security to the secure-DNS machinery.  This
bench quantifies what the deferred choice costs: wire-size overhead and
CPU overhead of the TSIG-signed push path vs plain text, plus a
correctness spot-check that forged and replayed pushes are rejected.
"""

import pytest

from repro.dnslib import (
    A,
    Key,
    Keyring,
    MAX_UDP_PAYLOAD,
    ResourceRecord,
    RRType,
    Verifier,
    make_cache_update,
    sign,
)

from benchmarks.conftest import print_table

KEY = Key.create("push.example.com", b"benchmark-secret-32-bytes-long!!")


def make_push():
    records = [ResourceRecord("www.content.example.com", RRType.A, 60,
                              A(f"10.0.1.{i}")) for i in range(1, 5)]
    return make_cache_update("www.content.example.com", records)


def signed_roundtrip(count):
    keyring = Keyring()
    keyring.add(KEY)
    verifier = Verifier(keyring)
    wire = make_push().to_wire()
    for step in range(count):
        signed = sign(wire, KEY, now=float(step))
        verifier.verify(signed, now=float(step))
    return wire


def plain_roundtrip(count):
    wire = make_push().to_wire()
    total = 0
    for _ in range(count):
        total += len(bytes(wire))  # baseline: just touch the bytes
    return wire


@pytest.mark.parametrize("mode", ["plain", "signed"])
def test_sec53_push_path_cpu(benchmark, mode):
    fn = signed_roundtrip if mode == "signed" else plain_roundtrip
    benchmark(fn, 100)


def test_sec53_size_overhead(benchmark):
    plain = benchmark(lambda: make_push().to_wire())
    signed = sign(plain, KEY, now=0.0)
    overhead = len(signed) - len(plain)
    print_table("§5.3 — secure CACHE-UPDATE size overhead",
                ("message", "bytes", "of UDP bound"),
                [("plain push", len(plain),
                  f"{len(plain) / MAX_UDP_PAYLOAD:.0%}"),
                 ("TSIG-signed push", len(signed),
                  f"{len(signed) / MAX_UDP_PAYLOAD:.0%}"),
                 ("overhead", overhead, "-")])
    # The signed message still fits UDP comfortably: security does not
    # force TCP or EDNS for DNScup-sized messages.
    assert len(signed) <= MAX_UDP_PAYLOAD
    assert overhead < 120  # key name + timestamp + SHA-256 MAC


def test_sec53_forgery_and_replay_rejected(benchmark):
    import pytest as _pytest
    from repro.dnslib import TsigError
    keyring = Keyring()
    keyring.add(KEY)
    verifier = Verifier(keyring)
    wire = benchmark(lambda: make_push().to_wire())
    # Forgery with a guessed key.
    wrong = Key.create(KEY.name, b"wrong-secret-also-32-bytes-long!")
    with _pytest.raises(TsigError):
        verifier.verify(sign(wire, wrong, now=10.0), now=10.0)
    # Replay of an old capture after newer traffic.
    old = sign(wire, KEY, now=100.0)
    verifier.verify(sign(wire, KEY, now=200.0), now=200.0)
    with _pytest.raises(TsigError):
        verifier.verify(old, now=200.0)
