"""Flash-crowd reaction (paper §1, objective 3).

A domain's request rate explodes; the operator redirects traffic to an
overflow pool.  Under TTL consistency the redirect only reaches clients
as cached entries expire — during a flash crowd, exactly when every
second of delay multiplies load on the dying origin.  With DNScup the
CACHE-UPDATE push retargets every leased cache in one round trip.

Measured: client requests still landing on the overloaded origin after
the redirect, how long the origin keeps absorbing them, and — on the
DNScup side — how many CACHE-UPDATE wire images the fan-out actually
encoded (the encode-once path builds one per changed RRset, however
many lease holders receive it).
"""

import pytest

from repro.core import DNScupConfig, DynamicLeasePolicy, attach_dnscup
from repro.dnslib import Name, RRType
from repro.net import Host, Network, Simulator
from repro.obs import AuditLimits, Observability, audit_observability
from repro.server import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.zone import load_zone

from benchmarks.conftest import print_table

ORIGIN_ADDRESS = "10.40.0.1"
OVERFLOW = ["203.0.113.1", "203.0.113.2", "203.0.113.3"]
TTL = 1800
SPIKE_AT = 300.0
REDIRECT_AT = 360.0          # operator reacts one minute into the spike
RUN_FOR = 1800.0
CALM_PERIOD = 30.0
SPIKE_PERIOD = 0.5           # 60x request-rate spike

ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.              IN SOA a.root. admin. 1 7200 900 604800 300
.              IN NS a.root.
a.root.        IN A  198.41.0.4
viral.com.     IN NS ns1.viral.com.
ns1.viral.com. IN A  10.41.0.1
"""

ZONE_TEXT = f"""\
$ORIGIN viral.com.
$TTL {TTL}
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.41.0.1
www  IN A   {ORIGIN_ADDRESS}
"""


def run_flash_crowd(dnscup_enabled):
    simulator = Simulator()
    network = Network(simulator, seed=17)
    AuthoritativeServer(Host(network, "198.41.0.4"),
                        [load_zone(ROOT_TEXT, origin=Name.root())])
    zone = load_zone(ZONE_TEXT)
    auth = AuthoritativeServer(Host(network, "10.41.0.1"), [zone])
    middleware = None
    obs = None
    if dnscup_enabled:
        obs = Observability.for_simulator(simulator, capture=True)
        obs.observe_network(network)
        middleware = attach_dnscup(
            auth, policy=DynamicLeasePolicy(0.0),
            config=DNScupConfig(observability=obs))
    resolver = RecursiveResolver(Host(network, "10.42.0.1"),
                                 [("198.41.0.4", 53)],
                                 dnscup_enabled=dnscup_enabled)
    client = StubResolver(Host(network, "10.43.0.1"), ("10.42.0.1", 53),
                          cache_seconds=0.0)

    hits = []  # (time, address hit)

    def request() -> None:
        client.lookup("www.viral.com",
                      lambda addrs, rc: hits.append(
                          (simulator.now, addrs[0] if addrs else None)))

    time_cursor = 0.0
    while time_cursor < RUN_FOR:
        simulator.schedule_at(time_cursor, request)
        period = SPIKE_PERIOD if time_cursor >= SPIKE_AT else CALM_PERIOD
        time_cursor += period
    simulator.schedule_at(
        REDIRECT_AT,
        lambda: zone.replace_address("www.viral.com", OVERFLOW))
    simulator.run()

    overloaded_after = [t for t, addr in hits
                        if t > REDIRECT_AT and addr == ORIGIN_ADDRESS]
    last_origin_hit = max(overloaded_after, default=REDIRECT_AT)
    stats = middleware.notification.stats if middleware else None
    if obs is not None:
        # The registry mirrors the module counters and the trace
        # accounts for every push — derived and live numbers must agree.
        gauges = obs.registry.snapshot()["gauges"]
        trace_counts = obs.trace.counts()
        assert gauges["notify.sent"] == stats.notifications_sent
        assert gauges["notify.wire_encodes"] == stats.wire_encodes
        assert trace_counts.get("notify.send", 0) == stats.notifications_sent
        assert trace_counts.get("change.detected", 0) \
            == middleware.detection.changes_detected
        # Invariant audit over trace + wire capture: the push retarget
        # must be a *clean* protocol run — every leased holder notified,
        # every send resolved, every ack backed by a delivered datagram,
        # and no holder stale longer than a few round trips.
        audit = audit_observability(obs, AuditLimits(max_staleness=10.0))
        assert audit.ok, audit.as_dict()
    return {
        "requests": len(hits),
        "origin_hits_after_redirect": len(overloaded_after),
        "origin_relief_delay": last_origin_hit - REDIRECT_AT,
        "notifications_sent": stats.notifications_sent if stats else 0,
        "wire_encodes": stats.wire_encodes if stats else 0,
        "observability": obs,
    }


def test_flash_crowd_redirect(benchmark):
    with_cup = benchmark.pedantic(run_flash_crowd, args=(True,),
                                  rounds=1, iterations=1)
    without = run_flash_crowd(False)

    print_table("Flash crowd: 60x spike at t=300 s, operator redirect at "
                f"t=360 s (TTL {TTL} s)",
                ("mode", "requests", "origin hits after redirect",
                 "origin relief delay (s)", "notifies", "wire encodes"),
                [("DNScup", with_cup["requests"],
                  with_cup["origin_hits_after_redirect"],
                  f"{with_cup['origin_relief_delay']:.1f}",
                  with_cup["notifications_sent"],
                  with_cup["wire_encodes"]),
                 ("TTL only", without["requests"],
                  without["origin_hits_after_redirect"],
                  f"{without['origin_relief_delay']:.1f}",
                  without["notifications_sent"],
                  without["wire_encodes"])])

    # Same request stream both runs.
    assert with_cup["requests"] == without["requests"]
    # DNScup relieves the origin within ~one request period; TTL keeps
    # hammering it until expiry.
    assert with_cup["origin_hits_after_redirect"] <= 3
    assert without["origin_hits_after_redirect"] > 100
    assert with_cup["origin_relief_delay"] < 10.0
    assert without["origin_relief_delay"] > TTL / 2
    # The redirect was pushed via CACHE-UPDATE, and each changed RRset
    # was encoded at most once however many holders it fanned out to.
    assert with_cup["notifications_sent"] >= 1
    assert with_cup["notifications_sent"] >= with_cup["wire_encodes"] >= 1
