"""Related-work replications: the TTL context the paper builds on (§2).

Two results DNScup's argument leans on are reproduced with this stack:

* **Jung et al. (IMW'02)** — "lowering the TTLs of type A records to a
  few hundred seconds has little adverse effect on cache hit rates":
  we sweep the cache TTL against a realistic query trace and show the
  hit-rate curve saturating by a few hundred seconds.
* **Shaikh et al. (INFOCOM'01)** — "aggressively small TTLs (on the
  order of seconds) are detrimental... increases of name resolution
  latency (by two magnitudes)": we measure client-perceived lookup
  latency through the full wire-level hierarchy as TTL shrinks.

Together they frame DNScup's pitch: TTLs can't be pushed low enough to
fake strong consistency without destroying latency, and don't need to
be high for hit rate — so consistency must come from *pushes*, not TTL
tuning.
"""

import pytest

from repro.dnslib import Name, RRType
from repro.net import Host, LatencyModel, LinkProfile, Network, Simulator
from repro.server import AuthoritativeServer, RecursiveResolver, ResolverCache, StubResolver
from repro.traces import QueryEvent
from repro.zone import load_zone

from benchmarks.conftest import print_table

TTL_SWEEP = (1, 10, 60, 300, 1800, 7200, 86400)


# -- Jung et al.: hit rate vs TTL ------------------------------------------------


def hit_rate_for_ttl(events, ttl):
    """Replay a query stream against a TTL-`ttl` cache; return hit rate."""
    cache = ResolverCache()
    hits = 0
    for event in events:
        entry = cache.get(event.name, RRType.A, event.time)
        if entry is not None:
            hits += 1
        else:
            from repro.dnslib import A, RRSet
            cache.put(RRSet(event.name, RRType.A, ttl, [A("10.0.0.1")]),
                      event.time)
    return hits / len(events)


def test_rel_jung_hit_rate_vs_ttl(benchmark, query_trace):
    events = query_trace[:40_000]
    benchmark.pedantic(hit_rate_for_ttl, args=(events, 300), rounds=1,
                       iterations=1)
    curve = [(ttl, hit_rate_for_ttl(events, ttl)) for ttl in TTL_SWEEP]
    print_table("Jung et al. replication — cache hit rate vs record TTL",
                ("TTL (s)", "hit rate"),
                [(ttl, f"{rate:.1%}") for ttl, rate in curve])
    rates = dict(curve)
    # Hit rate is monotone in TTL...
    values = [rate for _, rate in curve]
    assert values == sorted(values)
    # ...but saturates by a few hundred seconds: going from 300 s to a
    # full day buys only a modest gain compared to 1 s → 300 s.
    low_gain = rates[300] - rates[1]
    high_gain = rates[86400] - rates[300]
    assert high_gain < low_gain
    assert rates[300] > 0.5 * rates[86400]


# -- Shaikh et al.: resolution latency vs TTL -------------------------------------------


ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.               IN SOA a.root. admin. 1 7200 900 604800 300
.               IN NS a.root.
a.root.         IN A  198.41.0.4
site.com.       IN NS ns1.site.com.
ns1.site.com.   IN A  10.1.0.1
"""


def mean_latency_for_ttl(ttl, lookups=200, period=30.0):
    simulator = Simulator()
    # WAN-ish latencies between resolver and the hierarchy; LAN between
    # client and its resolver.
    network = Network(simulator, seed=23)
    network.set_link_profile("10.2.0.1", "198.41.0.4",
                             LinkProfile(latency=LatencyModel(base=0.040)))
    network.set_link_profile("198.41.0.4", "10.2.0.1",
                             LinkProfile(latency=LatencyModel(base=0.040)))
    network.set_link_profile("10.2.0.1", "10.1.0.1",
                             LinkProfile(latency=LatencyModel(base=0.030)))
    network.set_link_profile("10.1.0.1", "10.2.0.1",
                             LinkProfile(latency=LatencyModel(base=0.030)))
    # The client sits on the resolver's LAN: sub-millisecond hop.
    network.set_link_profile("10.3.0.1", "10.2.0.1",
                             LinkProfile(latency=LatencyModel(base=0.0005)))
    network.set_link_profile("10.2.0.1", "10.3.0.1",
                             LinkProfile(latency=LatencyModel(base=0.0005)))
    AuthoritativeServer(Host(network, "198.41.0.4"),
                        [load_zone(ROOT_TEXT, origin=Name.root())])
    zone_text = (f"$ORIGIN site.com.\n$TTL {ttl}\n"
                 "@ IN SOA ns1 admin 1 7200 900 604800 300\n"
                 "@ IN NS ns1\nns1 IN A 10.1.0.1\nwww IN A 10.5.0.1\n")
    AuthoritativeServer(Host(network, "10.1.0.1"), [load_zone(zone_text)])
    resolver = RecursiveResolver(Host(network, "10.2.0.1"),
                                 [("198.41.0.4", 53)])
    client = StubResolver(Host(network, "10.3.0.1"), ("10.2.0.1", 53),
                          cache_seconds=0.0)
    latencies = []

    def lookup() -> None:
        issued = simulator.now
        client.lookup("www.site.com",
                      lambda addrs, rc: latencies.append(simulator.now - issued))

    for index in range(lookups):
        simulator.schedule_at(index * period, lookup)
    simulator.run()
    return sum(latencies) / len(latencies)


def test_rel_shaikh_latency_vs_ttl(benchmark):
    benchmark.pedantic(mean_latency_for_ttl, args=(1,), rounds=1,
                       iterations=1)
    curve = [(ttl, mean_latency_for_ttl(ttl)) for ttl in TTL_SWEEP]
    print_table("Shaikh et al. replication — mean lookup latency vs TTL "
                "(queries every 30 s)",
                ("TTL (s)", "mean latency (ms)"),
                [(ttl, f"{latency * 1000:.2f}") for ttl, latency in curve])
    latencies = dict(curve)
    # Tiny TTLs force the full iterative path on ~every lookup; long
    # TTLs serve from the local resolver.  The gap spans well over an
    # order of magnitude (the paper's "two magnitudes" includes WAN
    # loss/timeouts our clean links don't add).
    assert latencies[1] > 20 * latencies[86400]
    values = [latency for _, latency in curve]
    assert values == sorted(values, reverse=True)
