"""Figure 7 / §5.2: the prototype testbed.

Builds the paper's LAN topology — root nameserver, master authoritative
server with two slaves, two DNS caches, 40 zones from the most popular
IRCache-style domains — drives queries and dynamic updates through it,
and validates the §5.2 claims: everything resolves, replication and
CACHE-UPDATE keep every copy consistent, and all messages stay below
the 512-byte RFC 1035 bound.  The benchmarked unit is a full
resolve-everything pass from one client.

The run is traced: the headline numbers (CACHE-UPDATEs, acks, ack RTT,
consistency window) are re-derived from the exported JSONL trace via
``repro-obs summarize`` and must match the live registry *exactly* —
the trace is a full, faithful account of the run.  The same trace (and
the wire capture) is then audited against the protocol invariants —
completeness, termination, causality, staleness, trace/wire agreement —
and the run must come back with zero violations, both through
:meth:`Testbed.audit` and through the ``repro-obs audit`` CLI.
"""

import json

import pytest

from repro.dnslib import MAX_UDP_PAYLOAD, Rcode, RRType
from repro.obs import load_trace_events, summarize_events
from repro.sim import Testbed, TestbedConfig
from repro.tools import obs_tool

from benchmarks.conftest import print_table


@pytest.fixture(scope="module")
def testbed():
    return Testbed(TestbedConfig(observability=True))


def lookup_everything(testbed):
    return testbed.lookup_all(0)


def test_fig7_testbed(benchmark, testbed, tmp_path):
    answers = benchmark.pedantic(lookup_everything, args=(testbed,),
                                 rounds=3, iterations=1, warmup_rounds=1)
    testbed.lookup_all(1)

    print_table("Figure 7 — testbed inventory",
                ("component", "value"),
                [("zones", len(testbed.zones)),
                 ("domains", len(testbed.domains)),
                 ("authoritative servers", f"1 master + {len(testbed.slaves)} slaves"),
                 ("DNS caches", len(testbed.caches)),
                 ("clients", len(testbed.clients))])

    # Everything resolves through the full hierarchy.
    assert all(addrs for addrs in answers.values())

    # Dynamic updates propagate to slaves (NOTIFY+IXFR) and to leased
    # caches (CACHE-UPDATE) — strong consistency end to end.
    updated = 0
    for domain in testbed.domains[:5]:
        rcode = testbed.dynamic_update(domain.name,
                                       f"172.20.0.{updated + 1}")
        assert rcode == Rcode.NOERROR
        updated += 1
    testbed.run()
    assert testbed.slaves_consistent()
    stats = testbed.dnscup.notification.stats
    assert stats.notifications_sent > 0
    assert stats.acks_received == stats.notifications_sent

    rows = [("updates applied", updated),
            ("slave replicas consistent", testbed.slaves_consistent()),
            ("CACHE-UPDATEs sent", stats.notifications_sent),
            ("CACHE-UPDATE acks", stats.acks_received),
            ("max message size (B)", testbed.max_message_size()),
            ("RFC 1035 UDP bound (B)", MAX_UDP_PAYLOAD)]
    print_table("§5.2 — testbed validation", ("check", "result"), rows)

    # The §5.2 claim: all messages far below 512 bytes.
    assert testbed.max_message_size() <= MAX_UDP_PAYLOAD
    assert testbed.max_message_size() < MAX_UDP_PAYLOAD * 0.75

    # -- trace-derived numbers reproduce the live registry exactly --------
    obs = testbed.observability
    trace_path = tmp_path / "fig7_trace.jsonl"
    metrics_path = tmp_path / "fig7_metrics.json"
    summary_path = tmp_path / "fig7_summary.json"
    obs.trace.export_jsonl(str(trace_path))
    obs.registry.export_json(str(metrics_path))
    assert obs.trace.dropped == 0

    rc = obs_tool.main(["summarize", str(trace_path), "--json",
                        "--output", str(summary_path)])
    assert rc == 0
    derived = json.loads(summary_path.read_text())
    snapshot = json.loads(metrics_path.read_text())

    # Counters: the trace accounts for every notification and ack.
    assert derived["notify"]["sends"] == stats.notifications_sent
    assert derived["notify"]["acks"] == stats.acks_received
    assert derived["notify"]["timeouts"] == stats.failures
    assert derived["changes"]["detected"] \
        == testbed.dnscup.detection.changes_detected
    assert snapshot["gauges"]["notify.sent"] == stats.notifications_sent
    assert snapshot["gauges"]["net.datagrams_delivered"] \
        == testbed.network.stats.datagrams_delivered

    # Timings: identical floats, not merely close — the trace-side
    # recomputation performs the same additions in the same order as
    # the live histograms.
    rtt_hist = snapshot["histograms"]["notify.ack_rtt"]
    assert derived["notify"]["ack_rtt"]["count"] == rtt_hist["count"]
    assert derived["notify"]["ack_rtt"]["sum"] == rtt_hist["sum"]
    assert derived["notify"]["ack_rtt"]["mean"] == rtt_hist["mean"]
    window_hist = snapshot["histograms"]["notify.consistency_window"]
    assert derived["changes"]["consistency_window"]["count"] \
        == window_hist["count"]
    assert derived["changes"]["consistency_window"]["sum"] \
        == window_hist["sum"]
    assert derived["changes"]["consistency_window"]["mean"] \
        == window_hist["mean"]

    # The in-process API agrees with the file round trip.
    assert summarize_events(load_trace_events(str(trace_path))) == derived

    # -- the invariant audit: a clean run has zero violations -------------
    report = testbed.audit()
    assert report.ok, report.as_dict()
    assert report.checks  # the families actually ran
    capture_path = tmp_path / "fig7_capture.jsonl"
    obs.capture.export_jsonl(str(capture_path))
    rc = obs_tool.main(["audit", str(trace_path),
                        "--capture", str(capture_path)])
    assert rc == 0

    fates = obs.capture.fates()
    print_table("Observability — trace-derived headline numbers",
                ("quantity", "trace", "registry"),
                [("CACHE-UPDATEs sent", derived["notify"]["sends"],
                  int(snapshot["gauges"]["notify.sent"])),
                 ("acks", derived["notify"]["acks"],
                  int(snapshot["gauges"]["notify.acked"])),
                 ("mean ack RTT (s)",
                  f"{derived['notify']['ack_rtt']['mean']:.6f}",
                  f"{rtt_hist['mean']:.6f}"),
                 ("mean consistency window (s)",
                  f"{derived['changes']['consistency_window']['mean']:.6f}",
                  f"{window_hist['mean']:.6f}"),
                 ("trace events", derived["span"]["count"],
                  obs.trace.emitted),
                 ("captured datagrams", sum(fates.values()),
                  len(obs.capture))])
