"""Figure 7 / §5.2: the prototype testbed.

Builds the paper's LAN topology — root nameserver, master authoritative
server with two slaves, two DNS caches, 40 zones from the most popular
IRCache-style domains — drives queries and dynamic updates through it,
and validates the §5.2 claims: everything resolves, replication and
CACHE-UPDATE keep every copy consistent, and all messages stay below
the 512-byte RFC 1035 bound.  The benchmarked unit is a full
resolve-everything pass from one client.
"""

import pytest

from repro.dnslib import MAX_UDP_PAYLOAD, Rcode, RRType
from repro.sim import Testbed, TestbedConfig

from benchmarks.conftest import print_table


@pytest.fixture(scope="module")
def testbed():
    return Testbed(TestbedConfig())


def lookup_everything(testbed):
    return testbed.lookup_all(0)


def test_fig7_testbed(benchmark, testbed):
    answers = benchmark.pedantic(lookup_everything, args=(testbed,),
                                 rounds=3, iterations=1, warmup_rounds=1)
    testbed.lookup_all(1)

    print_table("Figure 7 — testbed inventory",
                ("component", "value"),
                [("zones", len(testbed.zones)),
                 ("domains", len(testbed.domains)),
                 ("authoritative servers", f"1 master + {len(testbed.slaves)} slaves"),
                 ("DNS caches", len(testbed.caches)),
                 ("clients", len(testbed.clients))])

    # Everything resolves through the full hierarchy.
    assert all(addrs for addrs in answers.values())

    # Dynamic updates propagate to slaves (NOTIFY+IXFR) and to leased
    # caches (CACHE-UPDATE) — strong consistency end to end.
    updated = 0
    for domain in testbed.domains[:5]:
        rcode = testbed.dynamic_update(domain.name,
                                       f"172.20.0.{updated + 1}")
        assert rcode == Rcode.NOERROR
        updated += 1
    testbed.run()
    assert testbed.slaves_consistent()
    stats = testbed.dnscup.notification.stats
    assert stats.notifications_sent > 0
    assert stats.acks_received == stats.notifications_sent

    rows = [("updates applied", updated),
            ("slave replicas consistent", testbed.slaves_consistent()),
            ("CACHE-UPDATEs sent", stats.notifications_sent),
            ("CACHE-UPDATE acks", stats.acks_received),
            ("max message size (B)", testbed.max_message_size()),
            ("RFC 1035 UDP bound (B)", MAX_UDP_PAYLOAD)]
    print_table("§5.2 — testbed validation", ("check", "result"), rows)

    # The §5.2 claim: all messages far below 512 bytes.
    assert testbed.max_message_size() <= MAX_UDP_PAYLOAD
    assert testbed.max_message_size() < MAX_UDP_PAYLOAD * 0.75
