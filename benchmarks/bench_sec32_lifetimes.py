"""§3.2 narrative numbers: mapping lifetimes and redundant DNS traffic.

The paper derives per-class mean DN2IP mapping lifetimes (200 s, 750 s,
2.5 h, 42 d, 500 d) from the measured change frequencies, and observes
that CDN/Dyn TTLs are so much smaller than actual change intervals that
they cause "up to 10 and 25 times more DNS traffic than necessary".
This bench regenerates both tables.
"""

import math

import pytest

from repro.measurement import redundancy_factor, summarize_campaign
from repro.traces import (
    CATEGORY_CDN,
    CATEGORY_DYN,
    PAPER_MEAN_LIFETIME,
    by_category,
)

from benchmarks.conftest import print_table


def human(seconds):
    if math.isinf(seconds):
        return "inf"
    for unit, size in (("d", 86400.0), ("h", 3600.0), ("m", 60.0)):
        if seconds >= size:
            return f"{seconds / size:.1f} {unit}"
    return f"{seconds:.0f} s"


def summarize(probe_results):
    return summarize_campaign(probe_results)


def test_sec32_lifetimes_and_redundancy(benchmark, population, probe_results):
    summaries = benchmark(summarize, probe_results)

    rows = [(index, human(summaries[index].mean_lifetime),
             human(PAPER_MEAN_LIFETIME[index]))
            for index in sorted(summaries)]
    print_table("§3.2 — mean DN2IP mapping lifetime per class",
                ("class", "measured", "paper"), rows)

    # Lifetimes reproduce the paper's ordering and rough magnitude
    # (within ~3x — the synthetic processes are calibrated to the means,
    # probing quantization does the rest).
    for index, paper_value in PAPER_MEAN_LIFETIME.items():
        measured = summaries[index].mean_lifetime
        assert paper_value / 4 < measured < paper_value * 4, \
            f"class {index}: {measured} vs paper {paper_value}"

    # Redundant traffic factors.
    grouped = by_category(population)
    by_name = {}
    for result in probe_results:
        by_name[result.name] = result
    rows = []
    expectations = {CATEGORY_CDN: 10.0, CATEGORY_DYN: 25.0}
    for category, paper_max in expectations.items():
        factors = []
        for domain in grouped[category]:
            result = by_name[domain.name]
            if result.changes == 0:
                continue
            if category == CATEGORY_DYN and domain.ttl < 300:
                continue  # the paper's factor is for the TTL>=300 group
            lifetime = (result.probes * result.ttl_class.resolution
                        / result.changes)
            factors.append(redundancy_factor(domain.ttl, lifetime))
        factors.sort()
        rows.append((category, len(factors),
                     f"{factors[len(factors) // 2]:.1f}x",
                     f"{factors[-1]:.1f}x", f"{paper_max:.0f}x"))
        # Shape: the factor is clearly > 1 (TTLs too small) and within
        # a small multiple of the paper's "up to" value.
        assert factors[len(factors) // 2] > 2.0
        assert paper_max / 3 < factors[-1] < paper_max * 3
    print_table("§3.2 — redundant DNS traffic factor (fetches per change)",
                ("category", "domains", "median", "max", "paper 'up to'"),
                rows)
