"""Ablation: the two greedy optimizers and their duality / optimality gap.

§4.2 gives two greedy algorithms (storage-constrained SLP and
communication-constrained CLP) and claims greedy optimality properties.
This ablation (a) traces both over a realistic instance and checks they
meet as duals, and (b) bounds the SLP greedy's gap against the exact DP
knapsack on instances small enough to solve exactly.
"""

import random

import pytest

from repro.core import (
    LeaseInstance,
    communication_constrained,
    communication_constrained_floor,
    storage_constrained,
    storage_constrained_exact,
)
from repro.sim import train_pair_rates

from benchmarks.conftest import print_table


def build_instances(week_trace):
    events, config = week_trace
    rates = train_pair_rates(events, config.duration / 7.0)
    return [LeaseInstance(record=name, cache=ns, query_rate=rate,
                          max_lease=6 * 86400.0)
            for (name, ns), rate in rates.items()]


def test_abl_duality_on_trace(benchmark, week_trace):
    instances = benchmark.pedantic(build_instances, args=(week_trace,),
                                   rounds=1, iterations=1)

    rows = []
    for budget_fraction in (0.02, 0.1, 0.3, 0.6):
        budget = budget_fraction * len(instances)
        slp = storage_constrained(instances, budget)
        slp_point = slp.operating_point()
        clp = communication_constrained(instances,
                                        slp_point.message_rate + 1e-9)
        clp_point = clp.operating_point()
        rows.append((f"{budget:8.1f}", slp.granted_count,
                     f"{slp_point.query_rate_percentage:7.2f}",
                     clp.granted_count,
                     f"{clp_point.query_rate_percentage:7.2f}"))
        # Dual consistency: CLP meets SLP's message rate with no more
        # leases (uniform max leases → identical greedy ranking).
        assert clp.granted_count <= slp.granted_count
        assert clp_point.message_rate <= slp_point.message_rate + 1e-9
    print_table("Ablation — SLP→CLP duality on the trace instance",
                ("storage budget", "SLP leases", "SLP qr %",
                 "CLP leases", "CLP qr %"), rows)


def test_abl_greedy_vs_exact(benchmark):
    rng = random.Random(13)

    def make_instance(count):
        return [LeaseInstance(f"r{i}", "c",
                              query_rate=rng.expovariate(10.0) + 1e-4,
                              max_lease=rng.choice((200.0, 6000.0, 518400.0)))
                for i in range(count)]

    def gap_for(instances, budget):
        greedy = storage_constrained(instances, budget)
        exact = storage_constrained_exact(instances, budget,
                                          resolution=2000)
        greedy_point = greedy.operating_point()
        exact_point = exact.operating_point()
        greedy_saving = (greedy_point.max_message_rate
                         - greedy_point.message_rate)
        exact_saving = (exact_point.max_message_rate
                        - exact_point.message_rate)
        return greedy_saving, max(exact_saving, greedy_saving)

    instances = make_instance(18)
    benchmark(gap_for, instances, 4.0)

    rows = []
    worst_ratio = 1.0
    for trial in range(12):
        instances = make_instance(18)
        budget = rng.uniform(1.0, 10.0)
        greedy_saving, best_saving = gap_for(instances, budget)
        ratio = greedy_saving / best_saving if best_saving > 0 else 1.0
        worst_ratio = min(worst_ratio, ratio)
        rows.append((trial, f"{budget:5.2f}", f"{greedy_saving:8.4f}",
                     f"{best_saving:8.4f}", f"{ratio:.3f}"))
    print_table("Ablation — SLP greedy vs exact knapsack "
                "(message-rate saving achieved)",
                ("trial", "budget", "greedy", "exact", "ratio"), rows)

    # The greedy is consistently near-optimal on realistic instances
    # (its theoretical 1/2 bound is far from tight here).
    assert worst_ratio > 0.8
