"""Scale: the columnar/sharded engine on a million-cache flash crowd.

Generates a Figure 5-class flash-crowd scenario straight into CSR
columns (no event objects), runs the full fixed + dynamic lease sweep
through the sharded columnar engine, and holds the run to three
commitments:

* **throughput** — replayed events per second (trace events × sweep
  points, the accounting ``BENCH_replay.json`` established) must clear
  the committed ``min_events_per_sec`` floor;
* **shard invariance** — the 4-shard run's metrics JSON must be
  byte-identical to the 1-shard run (the exact-merge contract);
* **oracle fidelity** — a downscaled replica of the same scenario is
  replayed through the reference oracle and must match the columnar
  results bit for bit;
* **telemetry invariance** — the metrics-enabled replay
  (``sharded_scan_metrics``: full Registry reduction with exact
  histogram sums) must export byte-identical snapshots at 1, 2, and 8
  shards while itself clearing the same throughput floor.

Any mismatch counts as an *audit violation*; the run fails unless there
are zero.  The full-scale run (≥10^6 caches, ≥10^8 replayed events)
writes ``BENCH_scale.json`` at the repo root; CI re-runs a scaled-down
smoke (10^4 caches) through the same code path.

Run full scale:     python benchmarks/bench_scale.py
Run the CI smoke:   python benchmarks/bench_scale.py --caches 10000 \
                        --json /tmp/smoke.json --min-events-per-sec 200000
"""

from __future__ import annotations

import argparse
import dataclasses
import io
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.sim import (
    dynamic_lease_fn,
    fixed_lease_fn,
    flash_crowd_columnar,
    logspace,
    sharded_figure5_sweep,
    sharded_scan_metrics,
    simulate_lease_trace,
)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

#: The full-scale acceptance floor this PR establishes (replayed
#: events/second through the sweep); regressions must stay above it.
MIN_EVENTS_PER_SEC = 1_000_000

#: Full-scale scenario: every cache holds a lease conversation with the
#: hot CDN records, plus a long tail of regular domains.  Padded ~1 %
#: above 10^6 because a cache whose every Poisson draw lands on zero
#: never appears in the trace (~e^-8 of them), and the committed record
#: reports *observed* caches, which must stay above the million mark.
CACHES = 1_010_000
REGULAR_DOMAINS = 200_000
DURATION = 86400.0
FIXED_POINTS = 10
DYNAMIC_POINTS = 9

#: ~4 queries per hot pair per day (half in the flash window) keeps the
#: trace at ~10 events per cache overall — dense enough that the sweep
#: replays >=10^8 events, sparse enough to generate in seconds.
BASE_RATE = 2.0 / DURATION
FLASH_RATE = 2.0 / (0.25 * DURATION)

#: The oracle-fidelity replica: same scenario shape, small enough that
#: the per-event reference loop finishes in seconds.
ORACLE_CACHES = 2_000

QUANTILES = (0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99)


def build_scenario(caches: int, regular_domains: int):
    """The flash-crowd columns plus the sweep parameters."""
    trace, max_lease = flash_crowd_columnar(
        caches=caches, regular_domains=regular_domains, duration=DURATION,
        hot_domains=2, base_rate=BASE_RATE, flash_rate=FLASH_RATE,
        cache_fanout=1, seed=2006)
    rates = trace.trained_rates(DURATION / 7.0)
    fixed_lengths = logspace(10.0, 6 * 86400.0, FIXED_POINTS)
    positive = np.sort(rates[rates > 0.0])
    thresholds = ([0.0]
                  + [float(positive[int(q * (len(positive) - 1))])
                     for q in QUANTILES]
                  + [float(positive[-1]) * 2.0])
    return trace, max_lease, rates, fixed_lengths, thresholds


def metrics_blob(fixed, dynamic, polling) -> bytes:
    """Canonical bytes compared across shard counts."""
    return json.dumps(
        [dataclasses.asdict(result)
         for result in list(fixed) + list(dynamic) + [polling]],
        sort_keys=True).encode("utf-8")


def registry_blob(trace, max_lease, nshards: int) -> str:
    """One sharded telemetry scan's exported registry JSON."""
    registry = sharded_scan_metrics(trace, max_lease, DURATION, nshards)
    buffer = io.StringIO()
    registry.export_json(buffer)
    return buffer.getvalue()


def audit_oracle_fidelity(fixed_lengths) -> int:
    """Replay a downscaled replica through the reference oracle.

    Returns the number of operating points where the columnar/sharded
    engine and the oracle disagree (zero, or the engine is wrong).
    """
    trace, max_lease, rates, _lengths, thresholds = build_scenario(
        ORACLE_CACHES, ORACLE_CACHES // 5)
    fixed, dynamic, _polling = sharded_figure5_sweep(
        trace, rates, max_lease, fixed_lengths, thresholds, DURATION, 4)
    events = trace.to_events()
    rate_map = {(trace.names[p], int(trace.nameservers[p])): float(rates[p])
                for p in range(trace.pair_count)}
    lease_map = {trace.names[p]: float(max_lease[p])
                 for p in range(trace.pair_count)}
    violations = 0
    for length, result in zip(fixed_lengths, fixed):
        oracle = simulate_lease_trace(
            events, rate_map, lease_map.__getitem__, fixed_lease_fn(length),
            DURATION, scheme="fixed", parameter=length)
        if dataclasses.astuple(oracle) != dataclasses.astuple(result):
            violations += 1
    for threshold, result in zip(thresholds, dynamic):
        oracle = simulate_lease_trace(
            events, rate_map, lease_map.__getitem__,
            dynamic_lease_fn(threshold), DURATION, scheme="dynamic",
            parameter=threshold)
        if dataclasses.astuple(oracle) != dataclasses.astuple(result):
            violations += 1
    return violations


def run_scale_bench(caches: int, regular_domains: int,
                    min_events_per_sec: float,
                    json_path: Optional[Path] = None) -> dict:
    """One full bench run: generate, sweep, audit, record."""
    started = time.perf_counter()
    trace, max_lease, rates, fixed_lengths, thresholds = build_scenario(
        caches, regular_domains)
    generation_seconds = time.perf_counter() - started

    sweep_points = len(fixed_lengths) + len(thresholds) + 1
    started = time.perf_counter()
    fixed, dynamic, polling = sharded_figure5_sweep(
        trace, rates, max_lease, fixed_lengths, thresholds, DURATION, 1)
    sweep_seconds = time.perf_counter() - started
    replayed_events = trace.total * sweep_points
    events_per_sec = replayed_events / sweep_seconds

    audit_violations = 0
    sharded = sharded_figure5_sweep(trace, rates, max_lease, fixed_lengths,
                                    thresholds, DURATION, 4)
    if metrics_blob(*sharded) != metrics_blob(fixed, dynamic, polling):
        audit_violations += 1
    audit_violations += audit_oracle_fidelity(fixed_lengths)

    # Telemetry: replay the max-lease column with the full Registry
    # reduction enabled, at three shard counts; the merged snapshots
    # must be byte-identical and the metrics-enabled replay must still
    # clear the same throughput floor.
    started = time.perf_counter()
    telemetry_exports = {n: registry_blob(trace, max_lease, n)
                         for n in (1, 2, 8)}
    telemetry_seconds = time.perf_counter() - started
    if len(set(telemetry_exports.values())) != 1:
        audit_violations += 1
    # Three scans (one per shard count), each replaying the whole trace.
    telemetry_events_per_sec = 3 * trace.total / telemetry_seconds

    record = {
        "bench": "flash_crowd_scale_sweep",
        "caches": trace.cache_count(),
        "trace_events": trace.total,
        "pairs": trace.pair_count,
        "sweep_points": sweep_points,
        "replayed_events": replayed_events,
        "generation_seconds": round(generation_seconds, 3),
        "sweep_seconds": round(sweep_seconds, 3),
        "events_per_sec": round(events_per_sec),
        "shards_checked": [1, 4],
        "telemetry_shards_checked": [1, 2, 8],
        "telemetry_seconds": round(telemetry_seconds, 3),
        "telemetry_events_per_sec": round(telemetry_events_per_sec),
        "audit_violations": audit_violations,
        "min_events_per_sec": min_events_per_sec,
    }
    if json_path is not None:
        json_path.write_text(json.dumps(record, indent=2) + "\n")

    print(f"\n== Flash-crowd scale sweep — {trace.cache_count():,} caches, "
          f"{trace.total:,} events x {sweep_points} sweep points ==")
    print(f"  generation      {generation_seconds:8.2f} s")
    print(f"  sweep           {sweep_seconds:8.2f} s")
    print(f"  throughput      {events_per_sec:12,.0f} replayed events/s "
          f"(floor {min_events_per_sec:,.0f})")
    print(f"  telemetry       {telemetry_events_per_sec:12,.0f} replayed "
          f"events/s with Registry reduction (1/2/8 shards)")
    print(f"  audit           {audit_violations} violations "
          f"(shard invariance + oracle fidelity + telemetry)")
    if json_path is not None:
        print(f"  record          {json_path}")
    return record


def check_record(record: dict) -> List[str]:
    """The failure messages a run's record earns (empty = pass)."""
    failures = []
    if record["events_per_sec"] < record["min_events_per_sec"]:
        failures.append(
            f"throughput {record['events_per_sec']:,} events/s below the "
            f"floor {record['min_events_per_sec']:,}")
    if record["telemetry_events_per_sec"] < record["min_events_per_sec"]:
        failures.append(
            f"metrics-enabled throughput "
            f"{record['telemetry_events_per_sec']:,} events/s below the "
            f"floor {record['min_events_per_sec']:,}")
    if record["audit_violations"]:
        failures.append(
            f"{record['audit_violations']} audit violations (expected 0)")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Million-cache flash-crowd sweep benchmark.")
    parser.add_argument("--caches", type=int, default=CACHES)
    parser.add_argument("--regular-domains", type=int, default=None,
                        help="default: caches / 5")
    parser.add_argument("--min-events-per-sec", type=float,
                        default=MIN_EVENTS_PER_SEC)
    parser.add_argument("--json", type=Path, default=None,
                        help="record path (default: BENCH_scale.json at "
                             "the repo root for a full-scale run, none "
                             "otherwise)")
    args = parser.parse_args(argv)
    regular = (args.regular_domains if args.regular_domains is not None
               else args.caches // 5)
    json_path = args.json
    if json_path is None and args.caches >= CACHES:
        json_path = BENCH_JSON
    record = run_scale_bench(args.caches, regular, args.min_events_per_sec,
                             json_path)
    failures = check_record(record)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_scale_smoke():
    """Pytest entry: the CI-sized smoke through the same code path."""
    record = run_scale_bench(10_000, 2_000, min_events_per_sec=200_000)
    assert check_record(record) == []
    assert record["replayed_events"] >= 10_000 * 20


if __name__ == "__main__":
    sys.exit(main())
