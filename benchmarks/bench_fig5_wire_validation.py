"""Figure 5 cross-validation: replay simulator vs the wire-level stack.

The Figure 5 curves come from the trace-replay simulator (fast, no
network).  This bench re-runs one operating point through the *full*
wire-level system — real resolvers, real leases granted via RRC/LLT,
real CACHE-UPDATE traffic — and checks that the communication saving
the replay predicts actually materializes in authoritative-server query
counts.

Wire-level runs carry overheads the replay abstracts away (root
referrals, NS lookups), so the comparison is on the *relative saving*
(DNScup upstream traffic vs TTL-only upstream traffic for the same
workload), with a generous tolerance.
"""

import pytest

from repro.core import DynamicLeasePolicy
from repro.dnslib import Name, RRType
from repro.sim import (
    ProtocolScenario,
    ScenarioConfig,
    dynamic_lease_fn,
    no_lease_fn,
    simulate_lease_trace,
)
from repro.traces import (
    CATEGORY_REGULAR,
    DomainSpec,
    QueryEvent,
    StableProcess,
    WorkloadConfig,
    generate_requests,
)

from benchmarks.conftest import print_table

TTL = 60.0          # short TTL so polling traffic is meaningful
MAX_LEASE = 3600.0
DURATION = 1800.0


def build_domains(count=6):
    return [DomainSpec(Name.from_text(f"www.v{i}.com"), CATEGORY_REGULAR,
                       TTL, 1.0, StableProcess([f"10.70.{i}.1"]))
            for i in range(count)]


def workload():
    return WorkloadConfig(duration=DURATION, clients=9, nameservers=3,
                          total_request_rate=1.5,
                          client_cache_seconds=0.0, seed=51)


def wire_upstream_queries(domains, dnscup_enabled):
    scenario = ProtocolScenario(
        domains,
        ScenarioConfig(dnscup_enabled=dnscup_enabled, auth_servers=1,
                       resolvers=3,
                       policy_factory=lambda: DynamicLeasePolicy(0.0)))
    scenario.run_workload(workload())
    return scenario.auth_servers[0].stats.queries, scenario


def replay_prediction(domains):
    """What the replay simulator predicts for the same workload."""
    events = []
    for event in generate_requests(domains, workload()):
        events.append(event)
    rates = {}
    for event in events:
        key = (event.name, event.nameserver)
        rates[key] = rates.get(key, 0) + 1
    rates = {key: count / DURATION for key, count in rates.items()}

    def run(fn, scheme):
        return simulate_lease_trace(
            # model TTL-expiry polling by treating the TTL as a "lease"
            # in the no-DNScup case: each upstream fetch covers TTL secs
            events, rates, lambda n: MAX_LEASE, fn, DURATION, scheme=scheme)

    from repro.sim import fixed_lease_fn
    ttl_like = run(fixed_lease_fn(TTL), "ttl")     # polling-at-TTL
    leased = run(dynamic_lease_fn(0.0), "dnscup")  # all leased, max length
    return ttl_like.upstream_messages, leased.upstream_messages


def test_fig5_wire_validation(benchmark):
    domains = build_domains()
    wire_with, scenario = benchmark.pedantic(
        wire_upstream_queries, args=(domains, True), rounds=1, iterations=1)
    wire_without, _ = wire_upstream_queries(domains, False)
    predicted_ttl, predicted_lease = replay_prediction(domains)

    wire_saving = 1.0 - wire_with / wire_without
    predicted_saving = 1.0 - predicted_lease / predicted_ttl
    print_table("Figure 5 wire-level cross-validation "
                f"({DURATION:.0f} s, TTL {TTL:.0f} s, lease {MAX_LEASE:.0f} s)",
                ("quantity", "replay model", "wire-level"),
                [("TTL-only upstream fetches", predicted_ttl, wire_without),
                 ("DNScup upstream fetches", predicted_lease, wire_with),
                 ("communication saving", f"{predicted_saving:.1%}",
                  f"{wire_saving:.1%}")])

    # The wire-level run realizes the bulk of the predicted saving.
    assert wire_with < wire_without
    assert wire_saving > 0.5 * predicted_saving
    # And consistency is genuinely strong in the wire run: every push
    # acknowledged (nothing to push here — stable domains — so assert
    # the lease machinery at least engaged).
    summary = scenario.dnscup_summary()
    assert summary["grants"] >= len(domains)
