"""Ablation: maximal lease length for regular domains.

§5.1.2 notes the six-day cap was an artifact of the seven-day trace:
"Since regular domains seldom change their DN2IP mappings, we may use a
much higher lease length to gain a better performance."  This ablation
sweeps the cap and shows the storage/communication operating point of
the dynamic scheme at a fixed rate threshold.
"""

import pytest

from repro.sim import dynamic_lease_fn, simulate_lease_trace, train_pair_rates

from benchmarks.conftest import print_table

CAPS = (3600.0, 6 * 3600.0, 86400.0, 6 * 86400.0, 30 * 86400.0)


def sweep_caps(week_trace):
    events, config = week_trace
    rates = train_pair_rates(events, config.duration / 7.0)
    ordered = sorted(rates.values())
    threshold = ordered[int(0.8 * (len(ordered) - 1))]
    results = []
    for cap in CAPS:
        result = simulate_lease_trace(
            events, rates, lambda name, c=cap: c,
            dynamic_lease_fn(threshold), config.duration,
            scheme="dynamic", parameter=cap)
        results.append(result)
    return results


def test_abl_max_lease_length(benchmark, week_trace):
    results = benchmark.pedantic(sweep_caps, args=(week_trace,),
                                 rounds=1, iterations=1)

    rows = [(f"{r.parameter / 86400.0:6.2f} d", f"{r.storage_percentage:7.2f}",
             f"{r.query_rate_percentage:7.2f}", r.upstream_messages)
            for r in results]
    print_table("Ablation — max lease length (dynamic lease, fixed λ*)",
                ("cap", "storage %", "query rate %", "upstream msgs"), rows)

    # Longer caps monotonically trade storage for communication.
    storages = [r.storage_percentage for r in results]
    query_rates = [r.query_rate_percentage for r in results]
    assert storages == sorted(storages)
    assert query_rates == sorted(query_rates, reverse=True)
    # The paper's prediction: raising the cap beyond six days keeps
    # helping communication (regular domains rarely change)...
    assert query_rates[-1] < query_rates[-2] + 1e-9
    # ...but with diminishing returns: the 1d→6d saving exceeds 6d→30d.
    saving_mid = query_rates[2] - query_rates[3]
    saving_tail = query_rates[3] - query_rates[4]
    assert saving_mid >= saving_tail
