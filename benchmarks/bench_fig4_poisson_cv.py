"""Figure 4: mean CV of query inter-arrival vs client caching period.

The paper validates its Poisson assumption by computing, for each of
three local nameservers' traces, the mean coefficient of variation of
per-domain query inter-arrival times as a function of the client-side
cache duration — the mean CV approaches 1 (Poisson) as the caching
period grows, with tight 95 % confidence intervals.

We regenerate the three per-nameserver request streams and sweep the
same caching periods (1 s … 10,000 s, log-spaced as on the figure's
x-axis).
"""

import pytest

from repro.measurement import cv_vs_caching_period
from repro.traces import split_by_nameserver

from benchmarks.conftest import print_table

CACHING_PERIODS = (1.0, 10.0, 100.0, 900.0, 10_000.0)


def build_curves(request_trace):
    requests, config = request_trace
    per_ns = split_by_nameserver(requests, config.nameservers)
    return [cv_vs_caching_period(trace, CACHING_PERIODS, min_queries=20)
            for trace in per_ns]


def test_fig4_poisson_cv(benchmark, request_trace):
    curves = benchmark.pedantic(build_curves, args=(request_trace,),
                                rounds=1, iterations=1)

    rows = []
    for ns_index, curve in enumerate(curves, start=1):
        for period, stats in curve:
            rows.append((f"NS {'I' * ns_index}", f"{period:g}",
                         f"{stats.mean:.3f}",
                         f"±{stats.half_width:.3f}", stats.count))
    print_table("Figure 4 — mean CV of query interval vs caching period",
                ("trace", "caching period (s)", "mean CV", "95% CI",
                 "domains"), rows)

    for curve in curves:
        assert len(curve) == len(CACHING_PERIODS)
        deviations = [abs(stats.mean - 1.0) for _, stats in curve]
        # With long client caching the thinned stream is closest to
        # Poisson: the final deviation is the smallest (or near it),
        # and the mean CV ends within 25 % of 1.
        assert deviations[-1] <= min(deviations) + 0.1
        assert deviations[-1] < 0.25
        # Confidence intervals are tight, as the paper notes.
        for _, stats in curve:
            assert stats.half_width < 0.2
