"""Perf: pair-indexed fast replay vs the reference replay engine.

Times the full Figure 5 sweep (12 fixed lease lengths, 13 dynamic
thresholds, polling baseline) on a fixed-seed trace of ≥100k query
events, once with the O(sweep × trace) reference oracle and once with
the pair-indexed engine, asserts the two produce *identical*
``LeaseSimResult`` values at every operating point, and writes the
machine-readable trajectory to ``BENCH_replay.json`` at the repo root
so future PRs can regress against it.
"""

import json
import time
from pathlib import Path

import pytest

from repro.sim import figure5_curves, logspace, train_pair_rates
from repro.traces import (
    PopulationConfig,
    WorkloadConfig,
    assign_global_zipf,
    generate_population,
    generate_queries,
)

from benchmarks.conftest import print_table

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_replay.json"

#: The acceptance floor this PR establishes; regressions must stay above.
MIN_SPEEDUP = 5.0

FIXED_POINTS = 12
DYNAMIC_POINTS = 13


def build_trace():
    """A fixed-seed week-long trace with at least 100k query events."""
    domains = assign_global_zipf(
        generate_population(PopulationConfig(
            regular_per_tld=40, cdn_count=30, dyn_count=30, seed=2006)),
        exponent=1.1, seed=99)
    config = WorkloadConfig(duration=7 * 86400.0, clients=150,
                            nameservers=3, total_request_rate=0.7,
                            client_cache_seconds=900.0, seed=424242)
    events = list(generate_queries(domains, config))
    return events, domains, config


def sweep_parameters(events, duration):
    rates = sorted(train_pair_rates(
        sorted(events, key=lambda e: e.time), duration / 7.0).values())
    quantiles = (0.05, 0.2, 0.4, 0.6, 0.75, 0.9, 0.95, 0.98, 0.99,
                 0.995, 0.999)
    thresholds = ([0.0]
                  + [rates[int(q * (len(rates) - 1))] for q in quantiles]
                  + [rates[-1] * 2.0])
    return logspace(10.0, 6 * 86400.0, FIXED_POINTS), thresholds


def run_engine(engine, events, domains, duration, fixed_lengths, thresholds):
    started = time.perf_counter()
    curves = figure5_curves(events, domains, duration,
                            fixed_lengths=fixed_lengths,
                            rate_thresholds=thresholds, engine=engine)
    return curves, time.perf_counter() - started


def test_perf_replay_engines(benchmark):
    events, domains, config = build_trace()
    assert len(events) >= 100_000, \
        f"perf trace too small: {len(events)} events"
    fixed_lengths, thresholds = sweep_parameters(events, config.duration)
    sweep_points = len(fixed_lengths) + len(thresholds) + 1

    fast_curves, fast_seconds = benchmark.pedantic(
        run_engine,
        args=("fast", events, domains, config.duration, fixed_lengths,
              thresholds),
        rounds=1, iterations=1)[0:2]
    reference_curves, reference_seconds = run_engine(
        "reference", events, domains, config.duration, fixed_lengths,
        thresholds)

    # -- bit-identical results at every operating point -------------------
    assert fast_curves.fixed == reference_curves.fixed
    assert fast_curves.dynamic == reference_curves.dynamic
    assert fast_curves.polling == reference_curves.polling

    speedup = reference_seconds / fast_seconds
    replayed_events = len(events) * sweep_points
    record = {
        "bench": "figure5_replay_sweep",
        "trace_events": len(events),
        "pairs": fast_curves.polling.pair_count,
        "sweep_points": sweep_points,
        "fixed_points": len(fixed_lengths),
        "dynamic_points": len(thresholds),
        "reference_seconds": round(reference_seconds, 4),
        "fast_seconds": round(fast_seconds, 4),
        "speedup": round(speedup, 2),
        "reference_events_per_sec": round(replayed_events
                                          / reference_seconds),
        "fast_events_per_sec": round(replayed_events / fast_seconds),
        "min_speedup": MIN_SPEEDUP,
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    print_table(
        f"Replay engines — {len(events)} events × {sweep_points} sweep "
        "points",
        ("engine", "wall time (s)", "sweep events/s"),
        [("reference", f"{reference_seconds:8.3f}",
          f"{record['reference_events_per_sec']:,}"),
         ("fast (pair-indexed)", f"{fast_seconds:8.3f}",
          f"{record['fast_events_per_sec']:,}")])
    print(f"\nspeedup: {speedup:.1f}x (floor {MIN_SPEEDUP}x); "
          f"results bit-identical at all {sweep_points} operating points")
    print(f"trajectory written to {BENCH_JSON.name}")

    assert speedup >= MIN_SPEEDUP, \
        f"fast engine only {speedup:.1f}x faster (need {MIN_SPEEDUP}x)"
