"""§5.2: wire sizes of every message type vs the 512-byte UDP bound.

The prototype's validation that "all message sizes are far below the
limitation of 512 bytes" — measured here per message type, including
DNScup's extended query (RRC), lease-granting response (LLT), and
CACHE-UPDATE/ack, for realistic name lengths and answer sizes.  The
benchmarked unit is message encoding throughput.
"""

import pytest

from repro.dnslib import (
    A,
    MAX_UDP_PAYLOAD,
    ResourceRecord,
    RRType,
    make_cache_update,
    make_cache_update_ack,
    make_notify,
    make_query,
    make_response,
    make_update,
)
from repro.zone import update_add, update_delete_rrset

from benchmarks.conftest import print_table

NAME = "www.a-rather-long-subdomain.content-delivery.example-provider.com"


def build_message_zoo():
    """One representative instance of every message type on the wire."""
    plain_query = make_query(NAME, RRType.A)
    cup_query = make_query(NAME, RRType.A, rrc=1234)
    response = make_response(cup_query, llt=6000)
    answers = [ResourceRecord(NAME, RRType.A, 60, A(f"10.0.{i}.{i}"))
               for i in range(1, 9)]
    response.answer.extend(answers)
    update = make_update("example-provider.com")
    update.update.append(update_delete_rrset(NAME, RRType.A))
    update.update.append(ResourceRecord(NAME, RRType.A, 60, A("10.9.9.9")))
    cache_update = make_cache_update(NAME, answers)
    zoo = [
        ("QUERY (plain DNS)", plain_query),
        ("QUERY + RRC (DNScup)", cup_query),
        ("response + LLT, 8 A records", response),
        ("NOTIFY", make_notify("example-provider.com")),
        ("UPDATE (RFC 2136 replace)", update),
        ("CACHE-UPDATE, 8 A records", cache_update),
        ("CACHE-UPDATE ack", make_cache_update_ack(cache_update)),
    ]
    return zoo


def encode_all(zoo):
    return [message.to_wire() for _, message in zoo]


def test_proto_message_sizes(benchmark):
    zoo = build_message_zoo()
    wires = benchmark(encode_all, zoo)

    rows = []
    for (label, message), wire in zip(zoo, wires):
        rows.append((label, len(wire), f"{len(wire) / MAX_UDP_PAYLOAD:.0%}"))
        assert len(wire) <= MAX_UDP_PAYLOAD
    print_table("§5.2 — message sizes vs the 512-byte UDP bound",
                ("message", "bytes", "of bound"), rows)

    # "Far below": even the fattest message uses well under half.
    assert max(len(w) for w in wires) < MAX_UDP_PAYLOAD / 2

    # The DNScup extensions cost exactly two bytes each.
    plain = next(w for (label, _), w in zip(zoo, wires)
                 if label.startswith("QUERY (plain"))
    extended = next(w for (label, _), w in zip(zoo, wires)
                    if label.startswith("QUERY + RRC"))
    assert len(extended) == len(plain) + 2
