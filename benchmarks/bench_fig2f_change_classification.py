"""Figure 2 (f): classification of mapping changes per TTL class.

Prints the relocation / growth / rotation shares (and the derived
physical vs logical split) for each class, matching the figure's
qualitative claims: classes 1-2 are rotation-dominated (logical, CDN
load balancing), class 3 has a substantial physical share (~40 % in the
paper), and the majority of class 4-5 changes are physical.
"""

import pytest

from repro.measurement import aggregate, results_by_class
from repro.traces import CAUSE_GROWTH, CAUSE_RELOCATION, CAUSE_ROTATION

from benchmarks.conftest import print_table


def tally_classes(probe_results):
    grouped = results_by_class(probe_results)
    return {index: aggregate(r.tally for r in group)
            for index, group in grouped.items()}


def test_fig2f_change_classification(benchmark, probe_results):
    tallies = benchmark(tally_classes, probe_results)

    rows = []
    for index in sorted(tallies):
        tally = tallies[index]
        shares = tally.shares()
        rows.append((index, tally.total,
                     f"{shares[CAUSE_RELOCATION]:.0%}",
                     f"{shares[CAUSE_GROWTH]:.0%}",
                     f"{shares[CAUSE_ROTATION]:.0%}",
                     f"{tally.physical_share():.0%}"))
    print_table("Figure 2(f) — change causes per class",
                ("class", "changes", "relocation", "growth", "rotation",
                 "physical"), rows)

    # Classes 1-2: dominated by IP rotation (logical changes).
    for index in (1, 2):
        assert tallies[index].shares()[CAUSE_ROTATION] > 0.5
        assert tallies[index].physical_share() < 0.35
    # Class 3: a large minority of changes are physical (paper: ~40 %).
    assert tallies[3].physical_share() > 0.25
    # Classes 4-5: the majority of changes are physical.
    for index in (4, 5):
        if tallies[index].total:
            assert tallies[index].physical_share() > 0.5
