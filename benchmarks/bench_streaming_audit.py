"""Streaming audit: batch-equivalent verdicts with bounded memory.

Replays the traces of three established benches — the §5.2 Figure 7
testbed, the flash-crowd redirect, and the UDP-loss ablation — through
the :class:`~repro.obs.IncrementalAuditor` one event at a time, and
holds the streaming plane to its two commitments:

* **bit-for-bit equivalence** — the streamed violation list (order,
  kinds, messages) and the check counts must equal what the batch
  :func:`~repro.obs.audit_trace` computes over the complete trace;
* **bounded memory** — the peak number of tracked spans (live leases +
  unretired changes) must stay under the committed per-scenario caps
  below, all far beneath the event counts a batch audit holds.

Peak-span caps are ceilings observed with headroom, not targets: the
fig7 run peaks at ~81 spans over ~640 events, the flash crowd at a
handful, the loss ablation at ~the grant count.
"""

from __future__ import annotations

from repro.obs import AuditLimits, IncrementalAuditor, audit_trace
from repro.sim import Testbed, TestbedConfig, run_figure7_scenario

from benchmarks.bench_abl_udp_loss import CHANGES, run_loss_level
from benchmarks.bench_flash_crowd import run_flash_crowd
from benchmarks.conftest import print_table

#: Committed peak tracked-span ceilings per scenario (see module doc).
PEAK_CAPS = {
    "fig7": 120,
    "flash-crowd": 40,
    "udp-loss": 2 * CHANGES + 10,
}


def fig7_trace():
    testbed = Testbed(TestbedConfig(observability=True))
    run_figure7_scenario(testbed)
    limits = AuditLimits(storage_budget=500, renewal_budget=50.0,
                         max_staleness=10.0)
    return list(testbed.observability.trace.events), limits


def flash_crowd_trace():
    obs = run_flash_crowd(True)["observability"]
    return list(obs.trace.events), AuditLimits(max_staleness=10.0)


def udp_loss_trace():
    _module, _network, obs = run_loss_level(0.3)
    return list(obs.trace.events), AuditLimits(storage_budget=CHANGES)


SCENARIOS = {
    "fig7": fig7_trace,
    "flash-crowd": flash_crowd_trace,
    "udp-loss": udp_loss_trace,
}


def violation_key(violation):
    return (violation.kind, repr(violation.seq), repr(violation.t),
            tuple(violation.events), violation.message)


def stream_scenario(name):
    """Stream one scenario's trace; returns the comparison record."""
    events, limits = SCENARIOS[name]()
    auditor = IncrementalAuditor(limits=limits)
    for event in events:
        auditor.feed(event)
    stream = auditor.report()
    batch = audit_trace(events, limits=limits)
    return {
        "scenario": name,
        "events": len(events),
        "stream": stream,
        "batch": batch,
        "peak_tracked_spans": auditor.peak_tracked_spans,
        "peak_cap": PEAK_CAPS[name],
    }


def check_record(record):
    """Failure messages for one scenario record (empty = pass)."""
    failures = []
    stream, batch = record["stream"], record["batch"]
    if [violation_key(v) for v in stream.violations] \
            != [violation_key(v) for v in batch.violations]:
        failures.append(f"{record['scenario']}: streamed violations "
                        f"diverge from the batch audit")
    if stream.checks != batch.checks:
        failures.append(f"{record['scenario']}: streamed check counts "
                        f"diverge from the batch audit")
    if stream.ok != batch.ok:
        failures.append(f"{record['scenario']}: streamed verdict "
                        f"{stream.ok} != batch {batch.ok}")
    if record["peak_tracked_spans"] >= record["peak_cap"]:
        failures.append(
            f"{record['scenario']}: peak tracked spans "
            f"{record['peak_tracked_spans']} at or above the committed "
            f"cap {record['peak_cap']}")
    if record["peak_tracked_spans"] * 2 >= record["events"]:
        failures.append(
            f"{record['scenario']}: peak tracked spans not meaningfully "
            f"below the event count")
    return failures


def test_streaming_audit_matches_batch(benchmark):
    records = [benchmark.pedantic(stream_scenario, args=("fig7",),
                                  rounds=1, iterations=1)]
    records.extend(stream_scenario(name)
                   for name in ("flash-crowd", "udp-loss"))

    rows = []
    failures = []
    for record in records:
        failures.extend(check_record(record))
        stream = record["stream"]
        rows.append((record["scenario"], record["events"],
                     len(stream.violations),
                     "yes" if stream.ok else "NO",
                     record["peak_tracked_spans"], record["peak_cap"]))
    print_table("Streaming audit — batch equivalence and memory bounds",
                ("scenario", "events", "violations", "clean",
                 "peak spans", "cap"), rows)
    assert failures == [], failures
