"""Ablation: CACHE-UPDATE over lossy UDP.

DNScup ships notifications over UDP with acknowledgement-driven
retransmission (paper §1, §5.2).  This ablation injects packet loss on
the server→cache path and measures delivered consistency: ack ratio,
mean notification latency, and how staleness degrades as loss grows —
graceful fallback to TTL, never worse than weak consistency.

Every loss level runs fully observed (trace + wire capture) and is
audited against the protocol invariants: even at 50 % loss the trace
must stay *coherent* — every send resolves to an ack or timeout, acks
follow sends with exact RTT accounting, and every acknowledged
notification is backed by a delivered datagram in the capture.
"""

import pytest

from repro.core import DynamicLeasePolicy, LeaseTable, NotificationModule
from repro.core.detection import RecordChange
from repro.dnslib import A, Message, Name, Opcode, RRSet, RRType, make_cache_update_ack
from repro.net import Host, LinkProfile, Network, RetryPolicy, Simulator
from repro.obs import AuditLimits, Observability, audit_observability

from benchmarks.conftest import print_table

LOSS_RATES = (0.0, 0.1, 0.3, 0.5)
CHANGES = 120


def run_loss_level(loss_rate):
    simulator = Simulator()
    network = Network(simulator, seed=int(loss_rate * 100) + 1)
    obs = Observability.for_simulator(simulator, capture=True)
    obs.observe_network(network)
    server_host = Host(network, "10.1.0.1")
    cache_host = Host(network, "10.2.0.1")
    network.set_link_profile("10.1.0.1", "10.2.0.1",
                             LinkProfile(loss_rate=loss_rate))
    table = LeaseTable()
    table.trace = obs.trace
    module = NotificationModule(
        server_host.dns_socket(), table,
        retry=RetryPolicy(initial_timeout=0.5, max_attempts=5))
    module.trace = obs.trace
    cache_socket = cache_host.dns_socket()
    cache_socket.on_receive(
        lambda payload, src, dst: cache_socket.send(
            make_cache_update_ack(Message.from_wire(payload)).to_wire(), src))
    origin = Name.from_text("example.com")
    for index in range(CHANGES):
        name = Name.from_text(f"d{index}.example.com")
        table.grant(("10.2.0.1", 53), name, RRType.A, simulator.now, 1e6)
        new = RRSet(name, RRType.A, 60, [A("10.9.9.9")])
        # This harness hand-feeds changes, standing in for the detection
        # module — emit its change.detected (with a live seq) so the
        # trace tells the full story and the auditor can correlate.
        change = RecordChange(origin, name, RRType.A, None, new,
                              simulator.now, seq=index + 1)
        obs.trace.emit("change.detected", t=change.detected_at,
                       seq=change.seq, zone=origin.to_text(),
                       name=name.to_text(), rrtype=RRType.A.name,
                       kind=change.kind)
        module.on_change(change)
        simulator.run()
    return module, network, obs


def test_abl_udp_loss(benchmark):
    module, _, _ = benchmark.pedantic(run_loss_level, args=(0.3,),
                                      rounds=1, iterations=1)

    rows = []
    by_loss = {}
    for loss_rate in LOSS_RATES:
        module, network, obs = run_loss_level(loss_rate)
        # Loss may break delivery; it must never break the protocol's
        # bookkeeping.  The audit (trace + capture, with the storage
        # budget set to the grant count) must come back clean.
        audit = audit_observability(obs, AuditLimits(storage_budget=CHANGES))
        assert audit.ok, (loss_rate, audit.as_dict())
        mean_rtt = module.mean_ack_rtt()
        retransmissions = (network.stats.datagrams_sent
                           - 2 * module.stats.acks_received)
        rows.append((f"{loss_rate:.0%}",
                     f"{module.ack_ratio():7.2%}",
                     f"{mean_rtt * 1000 if mean_rtt else 0:8.1f}",
                     max(0, retransmissions)))
        by_loss[loss_rate] = module
    print_table("Ablation — CACHE-UPDATE under UDP loss "
                f"({CHANGES} changes, 5 attempts, 0.5 s backoff)",
                ("loss", "ack ratio", "mean latency (ms)",
                 "extra datagrams"), rows)

    # Lossless: every notification delivered, one round trip.
    assert by_loss[0.0].ack_ratio() == 1.0
    # Moderate loss: retransmission keeps delivery near-perfect
    # (5 attempts at 30% loss → ~99.8% per-change success).
    assert by_loss[0.3].ack_ratio() > 0.95
    # Heavy loss: degradation is graceful, never catastrophic.
    assert by_loss[0.5].ack_ratio() > 0.85
    # Latency grows with loss (retransmission backoff), monotonically
    # in expectation.
    assert by_loss[0.5].mean_ack_rtt() > by_loss[0.0].mean_ack_rtt()
