"""Figure 2 (a)-(e): PDF of DN2IP change frequency per TTL class.

Reruns the §3.2 probing campaign over the synthetic collection and
prints each class's change-frequency histogram plus the summary
statistics the paper reads off the figure.  The benchmarked unit is
one full probing pass over a domain subset.
"""

import pytest

from repro.measurement import (
    DnsDynamicsProber,
    change_frequency_pdf,
    oracle_from_specs,
    results_by_class,
    summarize_campaign,
)
from repro.traces import PAPER_MEAN_CHANGE_FREQUENCY

from benchmarks.conftest import print_table


def probe_subset(population):
    prober = DnsDynamicsProber(oracle_from_specs(population),
                               max_probes_per_domain=200)
    return prober.run_campaign(population[:60])


def test_fig2_change_frequency_pdfs(benchmark, population, probe_results):
    benchmark(probe_subset, population)

    grouped = results_by_class(probe_results)
    summaries = summarize_campaign(probe_results)

    for index in sorted(grouped):
        pdf = change_frequency_pdf(grouped[index], bins=10)
        bars = "".join("#" if mass > 0.5 else
                       "+" if mass > 0.1 else
                       "." if mass > 0 else " "
                       for _, mass in pdf)
        summary = summaries[index]
        print(f"\nFigure 2({'abcde'[index - 1]}) class {index}: "
              f"PDF over frequency [0,1] |{bars}|  "
              f"mean {summary.mean_change_frequency:.2%}, "
              f"changed {summary.changed_share:.0%} of domains")

    rows = [(i, f"{summaries[i].mean_change_frequency:.3%}",
             f"{PAPER_MEAN_CHANGE_FREQUENCY[i]:.1%}",
             f"{summaries[i].changed_share:.0%}")
            for i in sorted(summaries)]
    print_table("Figure 2 summary — mean change frequency per class",
                ("class", "measured", "paper", "changed share"), rows)

    # Shape assertions from §3.2:
    # classes 1-2 (logical-change dominated) change far more often than
    # the slow classes 4-5, with class 3 in between — the paper's own
    # ordering (10 %, 8 % >> 3 % >> 0.1 %, 0.2 %);
    fast = min(summaries[1].mean_change_frequency,
               summaries[2].mean_change_frequency)
    mid = summaries[3].mean_change_frequency
    slow = max(summaries[4].mean_change_frequency,
               summaries[5].mean_change_frequency)
    assert fast > mid > slow
    assert fast > 10 * slow
    # ~95 % of class 3-5 domains remain intact;
    for index in (3, 4, 5):
        assert summaries[index].changed_share < 0.25
    # the majority of class 1 domains change within the measurement;
    assert summaries[1].changed_share > 0.5
    # and magnitudes track the paper's means within a factor of ~3.
    for index, paper_value in PAPER_MEAN_CHANGE_FREQUENCY.items():
        measured = summaries[index].mean_change_frequency
        assert measured == pytest.approx(paper_value, rel=2.0), \
            f"class {index}: measured {measured:.4f} vs paper {paper_value}"
