"""Figure 7 over real sockets: the live-transport validation.

The same §5.2 testbed as ``bench_fig7_testbed`` — root, master, two
slaves, two caches, 40 zones — but assembled on the live substrate:
wall-clock timers (:class:`repro.net.LiveClock`) and real UDP/TCP
sockets on ``127.0.0.1`` (:class:`repro.net.AioNetwork`).  The server
and resolver code is byte-for-byte the code that ran in simulation;
only the substrate factories differ.

Validated here, per the ISSUE-7 acceptance criteria:

* the full scenario — every domain resolves from both clients, five
  dynamic updates, NOTIFY/IXFR replication, CACHE-UPDATE fan-out —
  completes over real loopback datagrams;
* every CACHE-UPDATE is acked and every message stays below the
  512-byte RFC 1035 bound *on the real wire*;
* the wall-clock trace passes the full protocol-invariant audit
  (completeness, termination, causality, staleness, wire agreement)
  with **zero violations**, both in-process and through the
  ``repro-obs --strict audit`` CLI — the check the CI
  ``live-transport`` job gates on;
* no TCP fallback was needed — every message fit in a UDP datagram, so
  the connection pool stayed idle (the pooled TCP path itself is
  exercised live in ``tests/test_net_aio.py``).

Skips (rather than fails) on platforms without loopback UDP.
"""

import json

import pytest

from repro.dnslib import MAX_UDP_PAYLOAD
from repro.net import loopback_available
from repro.sim import LiveTestbed, TestbedConfig, run_figure7_scenario
from repro.tools import obs_tool

from benchmarks.conftest import print_table

pytestmark = pytest.mark.skipif(
    not loopback_available(),
    reason="loopback UDP unavailable on this platform")


@pytest.fixture(scope="module")
def live_testbed():
    testbed = LiveTestbed(TestbedConfig(observability=True))
    yield testbed
    testbed.close()


def test_fig7_live(benchmark, live_testbed, tmp_path):
    summary = benchmark.pedantic(run_figure7_scenario, args=(live_testbed,),
                                 rounds=1, iterations=1)

    stats = live_testbed.dnscup.notification.stats
    net = live_testbed.network
    print_table("Figure 7 — live loopback run",
                ("quantity", "value"),
                [("zones", summary["zones"]),
                 ("domains", summary["domains"]),
                 ("dynamic updates", summary["updates_applied"]),
                 ("CACHE-UPDATEs sent", stats.notifications_sent),
                 ("CACHE-UPDATE acks", stats.acks_received),
                 ("UDP datagrams on the wire", net.stats.datagrams_sent),
                 ("max datagram (B)", net.stats.max_datagram),
                 ("TCP connections opened", net.pool.opened),
                 ("TCP connections reused", net.pool.reused)])

    # Strong consistency held over real sockets.
    assert summary["acks_received"] == summary["notifications_sent"] > 0
    assert live_testbed.slaves_consistent()

    # §5.2 on the real wire: every datagram below the RFC 1035 bound.
    assert net.stats.max_datagram <= MAX_UDP_PAYLOAD
    assert net.stats.max_datagram < MAX_UDP_PAYLOAD * 0.75

    # Real traffic actually flowed, and the capture saw it.
    obs = live_testbed.observability
    assert net.stats.datagrams_sent > 0
    assert net.stats.datagrams_delivered > 0
    assert len(obs.capture) > 0

    # Wall-clock timestamps are epoch-relative and monotonic.
    times = [t for t, _name, _fields in obs.trace.events]
    assert times and times[0] >= 0.0
    assert all(a <= b for a, b in zip(times, times[1:]))

    # -- the invariant audit: zero violations over real sockets ------------
    report = live_testbed.audit()
    assert report.ok, report.as_dict()
    assert report.checks

    trace_path = tmp_path / "fig7_live_trace.jsonl"
    capture_path = tmp_path / "fig7_live_capture.jsonl"
    obs.trace.export_jsonl(str(trace_path))
    obs.capture.export_jsonl(str(capture_path))
    assert obs.trace.dropped == 0
    rc = obs_tool.main(["--strict", "audit", str(trace_path),
                        "--capture", str(capture_path)])
    assert rc == 0

    # The trace-derived headline numbers agree with the live registry,
    # exactly as in simulation — wall clocks don't loosen the contract.
    summary_path = tmp_path / "fig7_live_summary.json"
    rc = obs_tool.main(["summarize", str(trace_path), "--json",
                        "--output", str(summary_path)])
    assert rc == 0
    derived = json.loads(summary_path.read_text())
    assert derived["notify"]["sends"] == stats.notifications_sent
    assert derived["notify"]["acks"] == stats.acks_received
