"""Table 1: measurement parameters (TTL classes).

Reprints the table from the implementation's own constants and checks
the population's class assignment against it; the benchmarked unit is
TTL classification throughput (it sits on the prober's hot path).
"""

import pytest

from repro.traces import TTL_CLASSES, by_ttl_class, classify_ttl

from benchmarks.conftest import print_table

DAY = 86400


def classify_many(ttls):
    return [classify_ttl(ttl).index for ttl in ttls]


def test_table1_measurement_params(benchmark, population):
    ttls = [domain.ttl for domain in population] * 20
    indices = benchmark(classify_many, ttls)
    assert len(indices) == len(ttls)

    rows = []
    for ttl_class in TTL_CLASSES:
        high = "inf" if ttl_class.ttl_high is None else f"{ttl_class.ttl_high:g}"
        rows.append((ttl_class.index,
                     f"[{ttl_class.ttl_low:g}, {high})",
                     f"{ttl_class.resolution:g} s",
                     f"{ttl_class.duration / DAY:g} d"))
    print_table("Table 1 — measurement parameters",
                ("class", "TTL range (s)", "resolution", "duration"), rows)

    # Paper's exact values.
    assert [c.resolution for c in TTL_CLASSES] == [20, 60, 300, 3600, 86400]
    assert [c.duration for c in TTL_CLASSES] == \
        [1 * DAY, 3 * DAY, 7 * DAY, 7 * DAY, 30 * DAY]

    # The synthetic collection exercises every class, and CDN/Dyn TTLs
    # are bounded by 300 s so they land in classes 1-2 (§3.2).
    classes = by_ttl_class(population)
    assert set(classes) == {1, 2, 3, 4, 5}
    for domain in population:
        if domain.category in ("cdn",):
            assert classify_ttl(domain.ttl).index in (1, 2)
