"""Figure 1: regular domain-name distribution vs number of requests.

The paper plots, per TLD group, how many regular domain names received
a given number of requests in the IRCache proxy traces (log-log, heavy
tailed).  We regenerate the proxy log synthetically and print the same
series; the benchmarked unit is the log synthesis + aggregation.
"""

import pytest

from repro.traces import (
    CATEGORY_REGULAR,
    by_category,
    figure1_series,
    powerlaw_fit,
    synthesize_proxy_log,
)

from benchmarks.conftest import print_table


@pytest.fixture(scope="module")
def regular_domains(population):
    return by_category(population)[CATEGORY_REGULAR]


def build_series(regular_domains):
    log = synthesize_proxy_log(regular_domains, total_requests=1_000_000,
                               seed=19)
    return figure1_series(log, bins_per_decade=2), log


def test_fig1_domain_distribution(benchmark, regular_domains):
    series, log = benchmark(build_series, regular_domains)

    rows = []
    for tld in ("com", "net", "org", "gov", "biz", "coop"):
        points = series.get(tld, [])
        rendered = ", ".join(f"({req:8.0f} req: {count:3d} names)"
                             for req, count in points)
        rows.append((f".{tld:5s}", rendered))
    print_table("Figure 1 — regular domains per request-count bin, by TLD",
                ("TLD", "(requests: #domains) series, log-log bins"), rows)

    # Shape checks: the distribution is heavy-tailed (negative log-log
    # slope, fitted across all regular domains pooled — per-TLD series
    # are small samples of the same law) and .com dominates the name
    # counts, as in the figure.
    pooled = {}
    for points in series.values():
        for requests, count in points:
            pooled[requests] = pooled.get(requests, 0) + count
    slope, _ = powerlaw_fit(sorted(pooled.items()))
    assert slope < -0.3, f"expected heavy tail, got slope {slope:.2f}"
    com_names = sum(count for _, count in series["com"])
    coop_names = sum(count for _, count in series.get("coop", []))
    assert com_names >= coop_names
    # Every major group appears, spanning over a decade of request
    # counts even at bench scale (the paper's 3,000-per-TLD collection
    # spans six decades; the span grows with the Zipf population size).
    spans = [max(r for r, _ in pts) / min(r for r, _ in pts)
             for pts in series.values() if len(pts) > 1]
    assert max(spans) > 10
