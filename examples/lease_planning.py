#!/usr/bin/env python3
"""Capacity planning with the §4.2 dynamic-lease optimizers.

An operator knows the per-cache query rates of their records (from
logs) and has either a storage budget (how many leases the server can
track) or a communication budget (how much lease-renewal traffic the
link tolerates).  This example builds a realistic rate distribution,
runs both greedy optimizers, verifies they are duals of each other, and
prints the resulting Figure-5-style operating points.

Run:  python examples/lease_planning.py
"""

from repro.core import (
    LeaseInstance,
    communication_constrained,
    communication_constrained_floor,
    storage_constrained,
    sweep_storage_budgets,
)
from repro.traces import (
    PopulationConfig,
    WorkloadConfig,
    generate_population,
    generate_queries,
    measured_rates,
)
from repro.sim import default_max_lease_of


def build_instances():
    """(record, cache) pairs with rates measured from a synthetic trace."""
    population = generate_population(PopulationConfig(
        regular_per_tld=20, cdn_count=15, dyn_count=15, seed=61))
    workload = WorkloadConfig(duration=6 * 3600.0, clients=60, nameservers=3,
                              total_request_rate=3.0, seed=62)
    events = list(generate_queries(population, workload))
    rates = measured_rates(events, workload.duration, by="name-nameserver")
    max_lease_of = default_max_lease_of(population)
    instances = [LeaseInstance(record=name, cache=ns, query_rate=rate,
                               max_lease=max_lease_of(name))
                 for (name, ns), rate in rates.items()]
    return instances


def main() -> None:
    instances = build_instances()
    print(f"{len(instances)} (record, cache) pairs; "
          f"total polling rate "
          f"{sum(i.query_rate for i in instances):.3f} msg/s\n")

    print("Storage-constrained (SLP greedy): minimize messages under a "
          "lease budget")
    print(f"{'budget':>8} {'leases':>7} {'storage %':>10} {'queries %':>10} "
          f"{'threshold λ*':>14}")
    budgets = [1.0, 5.0, 20.0, 80.0, len(instances) / 2]
    for budget, point in sweep_storage_budgets(instances, budgets):
        assignment = storage_constrained(instances, budget)
        threshold = assignment.rate_threshold()
        print(f"{budget:8.1f} {assignment.granted_count:7d} "
              f"{point.storage_percentage:10.2f} "
              f"{point.query_rate_percentage:10.2f} "
              f"{threshold if threshold is not None else float('nan'):14.6f}")

    print("\nCommunication-constrained (dual greedy): minimize leases "
          "under a message budget")
    floor = communication_constrained_floor(instances)
    polling = sum(i.query_rate for i in instances)
    print(f"  feasible budgets span [{floor:.4f}, {polling:.4f}] msg/s")
    print(f"{'budget':>10} {'leases':>7} {'storage %':>10} {'queries %':>10}")
    for fraction in (0.001, 0.01, 0.1, 0.5, 1.0):
        budget = floor + (polling - floor) * fraction
        assignment = communication_constrained(instances, budget)
        point = assignment.operating_point()
        print(f"{budget:10.4f} {assignment.granted_count:7d} "
              f"{point.storage_percentage:10.2f} "
              f"{point.query_rate_percentage:10.2f}")

    # Duality check: SLP at budget B, then CLP at the achieved message
    # rate, must meet the same budget with no more leases.  (With
    # heterogeneous per-category max leases the greedy duals can differ
    # on ties, so we compare quality, not identity.)
    slp = storage_constrained(instances, 20.0)
    slp_rate = slp.operating_point().message_rate
    clp = communication_constrained(instances, slp_rate + 1e-9)
    assert clp.operating_point().message_rate <= slp_rate + 1e-9
    assert clp.granted_count <= slp.granted_count
    print(f"\nDuality verified: at SLP's achieved message rate "
          f"({slp_rate:.4f} msg/s), CLP needs {clp.granted_count} leases "
          f"vs SLP's {slp.granted_count}.")
    print("\nOnline deployment: use the SLP threshold λ* as "
          "DynamicLeasePolicy(rate_threshold=λ*) — the RRC field gives "
          "the per-cache rates at query time.")


if __name__ == "__main__":
    main()
