#!/usr/bin/env python3
"""CDN redirection: fine-grained load balance without tiny TTLs.

The paper's motivating scenario 3: CDNs abuse very small TTLs (20 s for
Akamai-style domains) to keep control over request routing, which
multiplies DNS traffic ~10× past what the actual change rate needs
(§3.2).  With DNScup the CDN can keep a *long* effective cache lifetime
(the lease) and still retarget clients instantly by pushing
CACHE-UPDATEs when it actually rebalances.

This example serves one CDN domain both ways under the same client
workload and rebalancing schedule, and compares (a) upstream DNS query
traffic and (b) how quickly a rebalance takes effect.

Run:  python examples/cdn_load_balancing.py
"""

from repro.core import DynamicLeasePolicy, attach_dnscup, constant_max_lease
from repro.dnslib import Name, RRType
from repro.net import Host, Network, Simulator
from repro.server import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.zone import load_zone

EDGE_POOL = ["203.0.113.10", "203.0.113.20", "203.0.113.30"]
REBALANCE_EVERY = 600.0      # the CDN's real decision cadence (§3.2 ≈200 s+)
CLIENT_PERIOD = 5.0          # one client request every 5 s
RUN_FOR = 3600.0
CDN_TTL = 20                 # Akamai-style TTL for the weak baseline

ROOT_ZONE = """\
$ORIGIN .
$TTL 86400
.                 IN SOA a.root. admin. 1 7200 900 604800 300
.                 IN NS a.root.
a.root.           IN A  198.41.0.4
cdn.net.          IN NS ns1.cdn.net.
ns1.cdn.net.      IN A  10.4.0.1
"""

CDN_ZONE = f"""\
$ORIGIN cdn.net.
$TTL {CDN_TTL}
@     IN SOA ns1 admin 1 7200 900 604800 300
@     IN NS  ns1
ns1   IN A   10.4.0.1
img   IN A   {EDGE_POOL[0]}
"""


def run(dnscup_enabled: bool):
    simulator = Simulator()
    network = Network(simulator, seed=23)
    AuthoritativeServer(Host(network, "198.41.0.4"),
                        [load_zone(ROOT_ZONE, origin=Name.root())])
    zone = load_zone(CDN_ZONE)
    authoritative = AuthoritativeServer(Host(network, "10.4.0.1"), [zone])
    if dnscup_enabled:
        # CDN category: lease capped at 6000 s (well above TTL).
        attach_dnscup(authoritative, policy=DynamicLeasePolicy(0.0),
                      max_lease_fn=constant_max_lease(6000.0))
    resolver = RecursiveResolver(Host(network, "10.5.0.1"),
                                 [("198.41.0.4", 53)],
                                 dnscup_enabled=dnscup_enabled)
    client = StubResolver(Host(network, "10.5.0.2"), ("10.5.0.1", 53),
                          cache_seconds=0.0)

    served = []          # (time, edge address the client would hit)
    rebalance_log = []   # (time, new edge)

    def request() -> None:
        client.lookup("img.cdn.net",
                      lambda addrs, rc: served.append(
                          (simulator.now, addrs[0] if addrs else None)))

    def rebalance(index: int) -> None:
        edge = EDGE_POOL[index % len(EDGE_POOL)]
        rebalance_log.append((simulator.now, edge))
        zone.replace_address("img.cdn.net", [edge])

    t = 0.0
    while t < RUN_FOR:
        simulator.schedule_at(t, request)
        t += CLIENT_PERIOD
    t, index = REBALANCE_EVERY, 1
    while t < RUN_FOR:
        simulator.schedule_at(t, lambda i=index: rebalance(i))
        t += REBALANCE_EVERY
        index += 1
    simulator.run()

    # Retarget delay: for each rebalance, when did clients follow?
    delays = []
    for when, edge in rebalance_log:
        follow = next((time for time, addr in served
                       if time > when and addr == edge), None)
        if follow is not None:
            delays.append(follow - when)
    upstream = resolver.stats.upstream_queries
    return upstream, delays


def main() -> None:
    print(f"CDN domain img.cdn.net, TTL {CDN_TTL} s, edge pool of "
          f"{len(EDGE_POOL)}, rebalanced every {REBALANCE_EVERY:.0f} s, "
          f"client request every {CLIENT_PERIOD:.0f} s for "
          f"{RUN_FOR:.0f} s.\n")
    for enabled, label in ((False, "TTL polling"), (True, "DNScup push")):
        upstream, delays = run(enabled)
        mean_delay = sum(delays) / len(delays) if delays else float("nan")
        print(f"{label:12s}: {upstream:4d} upstream DNS queries, "
              f"retarget visible after {mean_delay:6.1f} s on average")
    print("\nDNScup needs a small fraction of the DNS traffic while "
          "retargeting within one client request period — the "
          "fine-grained control CDNs actually want (§1 objective 3) "
          "without the tiny-TTL polling tax (§3.2's ~10x redundancy).")


if __name__ == "__main__":
    main()
