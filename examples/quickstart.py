#!/usr/bin/env python3
"""Quickstart: strong DNS cache consistency in ~60 lines.

Builds the smallest interesting system — a root nameserver, one
authoritative server running the DNScup middleware, a local caching
nameserver (the "DNS cache"), and a client — then changes a DN2IP
mapping and watches the CACHE-UPDATE push keep the cache coherent.

Run:  python examples/quickstart.py
"""

from repro.core import DynamicLeasePolicy, attach_dnscup
from repro.dnslib import Name, RRType
from repro.net import Host, Network, Simulator
from repro.server import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.zone import load_zone

ROOT_ZONE = """\
$ORIGIN .
$TTL 86400
.                 IN SOA a.root. admin. 1 7200 900 604800 300
.                 IN NS a.root.
a.root.           IN A  198.41.0.4
example.com.      IN NS ns1.example.com.
ns1.example.com.  IN A  10.1.0.1
"""

EXAMPLE_ZONE = """\
$ORIGIN example.com.
$TTL 3600
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.1.0.1
www  IN A   10.0.0.10
"""


def main() -> None:
    # One simulated network, four hosts.
    simulator = Simulator()
    network = Network(simulator, seed=7)
    root_host = Host(network, "198.41.0.4")
    auth_host = Host(network, "10.1.0.1")
    lns_host = Host(network, "10.2.0.1")     # the local nameserver
    client_host = Host(network, "10.3.0.1")

    # Servers.
    AuthoritativeServer(root_host, [load_zone(ROOT_ZONE, origin=Name.root())])
    zone = load_zone(EXAMPLE_ZONE)
    authoritative = AuthoritativeServer(auth_host, [zone])

    # Attach DNScup: grant every DNScup-aware cache a maximal lease.
    dnscup = attach_dnscup(authoritative,
                           policy=DynamicLeasePolicy(rate_threshold=0.0))

    # A DNScup-aware local nameserver and a browser-like client.
    resolver = RecursiveResolver(lns_host, [("198.41.0.4", 53)],
                                 dnscup_enabled=True)
    client = StubResolver(client_host, ("10.2.0.1", 53), cache_seconds=0.0)

    def lookup(label: str) -> None:
        client.lookup("www.example.com",
                      lambda addrs, rc: print(f"{label}: {addrs} ({rc.name})"))
        simulator.run()

    lookup("initial lookup       ")
    print(f"  leases on the authoritative server: {len(dnscup.table)}")

    # The DN2IP mapping changes (disaster, migration, re-balancing...).
    print("\n*** www.example.com moves to 172.16.9.9 ***\n")
    zone.replace_address("www.example.com", ["172.16.9.9"])
    simulator.run()  # lets the CACHE-UPDATE push and its ACK fly

    entry = resolver.cache.peek("www.example.com", RRType.A)
    cached = [r.address for r in entry.rrset.rdatas]
    print(f"resolver cache after push: {cached}  "
          f"(TTL had {entry.remaining_ttl(simulator.now)} s left — "
          f"weak consistency would still serve the dead address)")

    lookup("lookup after change  ")
    print("\nDNScup summary:", dnscup.summary())


if __name__ == "__main__":
    main()
