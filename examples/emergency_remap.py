#!/usr/bin/env python3
"""Emergency service redirection: the paper's motivating scenario 1.

A critical service (one-day TTL, the worst case for weak consistency)
must be redirected to a backup site after a sudden failure.  We run the
identical incident twice — once on plain TTL DNS, once with DNScup —
and measure how long clients keep being sent to the dead address.

Run:  python examples/emergency_remap.py
"""

from repro.core import DynamicLeasePolicy, attach_dnscup
from repro.dnslib import Name, RRType
from repro.net import Host, Network, Simulator
from repro.server import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.zone import load_zone

PRIMARY = "10.8.1.1"
BACKUP = "172.31.99.1"
INCIDENT_AT = 120.0          # seconds into the run
CHECK_EVERY = 30.0
RUN_FOR = 1200.0

ROOT_ZONE = """\
$ORIGIN .
$TTL 86400
.              IN SOA a.root. admin. 1 7200 900 604800 300
.              IN NS a.root.
a.root.        IN A  198.41.0.4
bank.com.      IN NS ns1.bank.com.
ns1.bank.com.  IN A  10.8.0.1
"""

BANK_ZONE = f"""\
$ORIGIN bank.com.
$TTL 86400
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.8.0.1
www  IN A   {PRIMARY}
"""


def run_incident(dnscup_enabled: bool) -> float:
    """Returns how long clients were directed to the dead address."""
    simulator = Simulator()
    network = Network(simulator, seed=11)
    AuthoritativeServer(Host(network, "198.41.0.4"),
                        [load_zone(ROOT_ZONE, origin=Name.root())])
    zone = load_zone(BANK_ZONE)
    authoritative = AuthoritativeServer(Host(network, "10.8.0.1"), [zone])
    if dnscup_enabled:
        attach_dnscup(authoritative, policy=DynamicLeasePolicy(0.0))
    resolver = RecursiveResolver(Host(network, "10.9.0.1"),
                                 [("198.41.0.4", 53)],
                                 dnscup_enabled=dnscup_enabled)
    client = StubResolver(Host(network, "10.9.0.2"), ("10.9.0.1", 53),
                          cache_seconds=0.0)

    answers = []  # (time, address)

    def check() -> None:
        client.lookup("www.bank.com",
                      lambda addrs, rc: answers.append(
                          (simulator.now, addrs[0] if addrs else None)))

    probe_time = 0.0
    while probe_time < RUN_FOR:
        simulator.schedule_at(probe_time, check)
        probe_time += CHECK_EVERY
    simulator.schedule_at(INCIDENT_AT,
                          lambda: zone.replace_address("www.bank.com",
                                                       [BACKUP]))
    simulator.run()

    stale_until = INCIDENT_AT
    for time, address in answers:
        if time >= INCIDENT_AT and address == PRIMARY:
            stale_until = max(stale_until, time)
    return stale_until - INCIDENT_AT


def main() -> None:
    print("Incident: www.bank.com (TTL 86400 s) fails over "
          f"to {BACKUP} at t={INCIDENT_AT:.0f} s.\n")
    for enabled, label in ((False, "TTL only (weak consistency)"),
                           (True, "DNScup  (strong consistency)")):
        stale = run_incident(enabled)
        suffix = ""
        if not enabled:
            suffix = (f"  — and would continue for the rest of the "
                      f"86400 s TTL")
        print(f"{label}: clients sent to the DEAD address for "
              f">= {stale:.0f} s after the failover{suffix}")
    print("\nWith DNScup the CACHE-UPDATE push reaches the local "
          "nameserver within one round trip, so the very next client "
          "lookup already lands on the backup site.")


if __name__ == "__main__":
    main()
