#!/usr/bin/env python3
"""Dynamic DNS for a mobile host: the paper's motivating scenario 2.

A host behind DHCP (home server / mobile device) updates its A record
through RFC 2136 dynamic update whenever it gets a new address.  The
DNScup middleware turns each accepted UPDATE into CACHE-UPDATE pushes,
so peers that cached the old address reconnect immediately instead of
waiting out the TTL.

This example drives the *entire* pipeline over the simulated wire:
UPDATE message → zone commit → detection → notification → cache ack.

Run:  python examples/dynamic_dns_mobile.py
"""

from repro.core import DynamicLeasePolicy, attach_dnscup, constant_max_lease
from repro.dnslib import (
    A,
    Message,
    Name,
    Rcode,
    ResourceRecord,
    RRType,
    make_update,
)
from repro.net import Host, Network, Simulator
from repro.server import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.zone import load_zone, update_delete_rrset

ROOT_ZONE = """\
$ORIGIN .
$TTL 86400
.                   IN SOA a.root. admin. 1 7200 900 604800 300
.                   IN NS a.root.
a.root.             IN A  198.41.0.4
dyndns.org.         IN NS ns1.dyndns.org.
ns1.dyndns.org.     IN A  10.6.0.1
"""

DYN_ZONE = """\
$ORIGIN dyndns.org.
$TTL 300
@       IN SOA ns1 admin 1 7200 900 604800 300
@       IN NS  ns1
ns1     IN A   10.6.0.1
laptop  IN A   192.0.2.10
"""

DHCP_LEASES = ["192.0.2.10", "198.51.100.77", "203.0.113.5", "192.0.2.200"]


def main() -> None:
    simulator = Simulator()
    network = Network(simulator, seed=5)
    AuthoritativeServer(Host(network, "198.41.0.4"),
                        [load_zone(ROOT_ZONE, origin=Name.root())])
    zone = load_zone(DYN_ZONE)
    provider = AuthoritativeServer(Host(network, "10.6.0.1"), [zone])
    # Dyn-category lease: 6000 s max (paper §5.1).
    attach_dnscup(provider, policy=DynamicLeasePolicy(0.0),
                  max_lease_fn=constant_max_lease(6000.0))

    resolver = RecursiveResolver(Host(network, "10.2.0.1"),
                                 [("198.41.0.4", 53)], dnscup_enabled=True)
    peer = StubResolver(Host(network, "10.3.0.1"), ("10.2.0.1", 53),
                        cache_seconds=0.0)
    mobile = Host(network, "192.0.2.10").socket()

    def peer_lookup(label: str) -> None:
        peer.lookup("laptop.dyndns.org",
                    lambda addrs, rc: print(f"  {label}: peer connects to "
                                            f"{addrs[0] if addrs else rc.name}"))
        simulator.run()

    def send_dynamic_update(new_address: str) -> None:
        message = make_update("dyndns.org")
        message.update.append(
            update_delete_rrset("laptop.dyndns.org", RRType.A))
        message.update.append(ResourceRecord("laptop.dyndns.org", RRType.A,
                                             300, A(new_address)))

        def on_response(payload, src) -> None:
            rcode = (Message.from_wire(payload).rcode
                     if payload else Rcode.SERVFAIL)
            print(f"  UPDATE -> {rcode.name}")

        mobile.request(message.to_wire(), ("10.6.0.1", 53), message.id,
                       on_response)
        simulator.run()

    print("Initial state:")
    peer_lookup("t=0    ")
    for hop, address in enumerate(DHCP_LEASES[1:], start=1):
        print(f"\nDHCP renumbering #{hop}: laptop moves to {address}")
        send_dynamic_update(address)
        peer_lookup(f"t={simulator.now:5.1f}")

    entry = resolver.cache.peek("laptop.dyndns.org", RRType.A)
    print("\nLocal nameserver cache entry after the journey:",
          [r.address for r in entry.rrset.rdatas],
          f"(lease valid: {entry.has_lease(simulator.now)})")
    print("Every reconnect hit the fresh address without a single "
          "TTL expiry wait.")


if __name__ == "__main__":
    main()
