#!/usr/bin/env python3
"""Secure DNScup (§5.3): signed CACHE-UPDATE vs cache poisoning.

Plain-text CACHE-UPDATE messages would let anyone who can spoof UDP
rewrite a resolver's cache.  With a shared TSIG key, the authoritative
server signs every push and the resolver verifies — forged, tampered,
and replayed pushes are dropped while legitimate updates flow.

Run:  python examples/secure_push.py
"""

from repro.core import DNScup, DNScupConfig, DynamicLeasePolicy
from repro.dnslib import (
    A,
    Key,
    Keyring,
    Name,
    ResourceRecord,
    RRType,
    make_cache_update,
    sign,
)
from repro.net import Host, Network, RetryPolicy, Simulator
from repro.server import AuthoritativeServer, RecursiveResolver
from repro.zone import load_zone

ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.                IN SOA a.root. admin. 1 7200 900 604800 300
.                IN NS a.root.
a.root.          IN A  198.41.0.4
pay.com.         IN NS ns1.pay.com.
ns1.pay.com.     IN A  10.1.0.1
"""

ZONE_TEXT = """\
$ORIGIN pay.com.
$TTL 3600
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.1.0.1
www  IN A   10.0.0.42
"""


def main() -> None:
    simulator = Simulator()
    network = Network(simulator, seed=13)
    AuthoritativeServer(Host(network, "198.41.0.4"),
                        [load_zone(ROOT_TEXT, origin=Name.root())])
    zone = load_zone(ZONE_TEXT)
    auth = AuthoritativeServer(Host(network, "10.1.0.1"), [zone])

    push_key = Key.create("dnscup-key.pay.com",
                          "pre-shared-secret-32-bytes-long!")
    dnscup = DNScup(auth, policy=DynamicLeasePolicy(0.0),
                    config=DNScupConfig(tsig_key=push_key)).attach()
    keyring = Keyring()
    keyring.add(push_key)
    resolver = RecursiveResolver(Host(network, "10.2.0.1"),
                                 [("198.41.0.4", 53)],
                                 dnscup_enabled=True,
                                 tsig_keyring=keyring, tsig_require=True)

    def cached() -> str:
        entry = resolver.cache.peek("www.pay.com", RRType.A)
        return entry.rrset.rdatas[0].address if entry else "(none)"

    resolver.resolve("www.pay.com", RRType.A, lambda recs, rc: None)
    simulator.run()
    print(f"1. legitimate lookup      -> cache holds {cached()}")

    # An off-path attacker forges a CACHE-UPDATE pointing at their box.
    attacker = Host(network, "203.0.113.66").socket(5353)
    forged = make_cache_update(
        "www.pay.com",
        [ResourceRecord("www.pay.com", RRType.A, 3600, A("203.0.113.99"))])
    attacker.request(forged.to_wire(), ("10.2.0.1", 53), forged.id,
                     lambda p, s: None,
                     retry=RetryPolicy(initial_timeout=0.3, max_attempts=2))
    simulator.run()
    print(f"2. forged unsigned push   -> cache holds {cached()} "
          f"(rejected: {resolver.stats.tsig_rejected_unsigned})")

    # The attacker guesses a key.
    wrong_key = Key.create("dnscup-key.pay.com",
                           "totally-wrong-guess-32-bytes!!!!")
    attacker2 = Host(network, "203.0.113.67").socket(5353)
    attacker2.send(sign(forged.to_wire(), wrong_key, simulator.now),
                   ("10.2.0.1", 53))
    simulator.run()
    print(f"3. forged signed push     -> cache holds {cached()} "
          f"(MAC failures: {resolver.stats.tsig_failures})")

    # The real server moves the service: signed push goes through.
    zone.replace_address("www.pay.com", ["10.0.0.43"])
    simulator.run()
    print(f"4. legitimate signed push -> cache holds {cached()} "
          f"(ack ratio: {dnscup.notification.ack_ratio():.0%})")


if __name__ == "__main__":
    main()
