#!/usr/bin/env python3
"""Audit quickstart: prove a run obeyed the protocol from its trace.

Runs the smallest interesting DNScup system fully observed (trace bus +
wire capture), pushes a few DN2IP changes through it, exports the JSONL
artifacts, and then audits them with the ``repro-obs`` invariant
checker: completeness (every lease holder notified), termination (every
notification resolved), causality (acks follow sends, RTTs exact),
staleness (the settled window matches the last ack), and trace/wire
agreement (every send backed by captured datagrams).  A clean run
reports zero violations; the process exits nonzero otherwise, which is
what lets CI gate on it.

Run:  python examples/audit_quickstart.py [output-dir]
"""

import os
import sys
import tempfile

from repro.core import DNScupConfig, DynamicLeasePolicy, attach_dnscup
from repro.dnslib import Name
from repro.net import Host, Network, Simulator
from repro.obs import Observability
from repro.server import AuthoritativeServer, RecursiveResolver, StubResolver
from repro.tools import obs_tool
from repro.zone import load_zone

ROOT_ZONE = """\
$ORIGIN .
$TTL 86400
.                 IN SOA a.root. admin. 1 7200 900 604800 300
.                 IN NS a.root.
a.root.           IN A  198.41.0.4
example.com.      IN NS ns1.example.com.
ns1.example.com.  IN A  10.1.0.1
"""

EXAMPLE_ZONE = """\
$ORIGIN example.com.
$TTL 3600
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.1.0.1
www  IN A   10.0.0.10
api  IN A   10.0.0.20
"""


def main(argv) -> int:
    out_dir = argv[1] if len(argv) > 1 \
        else tempfile.mkdtemp(prefix="dnscup-audit-")
    os.makedirs(out_dir, exist_ok=True)

    # The quickstart topology, fully observed from the first datagram.
    simulator = Simulator()
    network = Network(simulator, seed=7)
    obs = Observability.for_simulator(simulator, capture=True)
    obs.observe_network(network)
    AuthoritativeServer(Host(network, "198.41.0.4"),
                        [load_zone(ROOT_ZONE, origin=Name.root())])
    zone = load_zone(EXAMPLE_ZONE)
    authoritative = AuthoritativeServer(Host(network, "10.1.0.1"), [zone])
    attach_dnscup(authoritative,
                  policy=DynamicLeasePolicy(rate_threshold=0.0),
                  config=DNScupConfig(observability=obs))
    resolver = RecursiveResolver(Host(network, "10.2.0.1"),
                                 [("198.41.0.4", 53)], dnscup_enabled=True)
    client = StubResolver(Host(network, "10.3.0.1"), ("10.2.0.1", 53),
                          cache_seconds=0.0)

    # Warm the cache (granting leases), then push a few changes.
    for name in ("www.example.com", "api.example.com"):
        client.lookup(name, lambda addrs, rc: None)
    simulator.run()
    zone.replace_address("www.example.com", ["10.0.0.99"])
    simulator.run()
    zone.replace_address("api.example.com", ["10.0.0.88"])
    zone.replace_address("www.example.com", ["10.0.0.77"])
    simulator.run()

    # Export the run's record: the trace (with the bus's own meta
    # bookkeeping) and the pcap-like wire capture.
    trace_path = os.path.join(out_dir, "trace.jsonl")
    capture_path = os.path.join(out_dir, "capture.jsonl")
    obs.trace.export_jsonl(trace_path, meta=True)
    obs.capture.export_jsonl(capture_path)
    print(f"trace:   {trace_path} ({len(obs.trace)} events)")
    print(f"capture: {capture_path} ({len(obs.capture)} datagrams)")

    # Audit it — the same entry point as `repro-obs audit` on the CLI.
    rc = obs_tool.main(["audit", trace_path, "--capture", capture_path,
                        "--storage-budget", "8", "--max-staleness", "1.0"])

    # And leave the human-readable story next to the raw artifacts.
    report_path = os.path.join(out_dir, "report.md")
    obs_tool.main(["report", trace_path, "--capture", capture_path,
                   "--title", "Audit quickstart run",
                   "--output", report_path])
    print(f"report:  {report_path}")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
