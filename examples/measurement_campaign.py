#!/usr/bin/env python3
"""Re-run the paper's §3 DNS-dynamics measurement study, synthetically.

Generates the domain collection (regular domains over the major TLD
groups, CDN domains, Dyn domains), probes every domain at its Table 1
class's sampling resolution, and prints the §3.2 narrative numbers:
per-class change frequencies, changed shares, implied mapping
lifetimes, the physical/logical breakdown (Figure 2f), and the
CDN/Dyn redundant-traffic factors.

Run:  python examples/measurement_campaign.py [--full]
      (--full runs the complete Table 1 probe counts; default caps
       probes per domain for a fast demonstration)
"""

import sys

from repro.measurement import (
    DnsDynamicsProber,
    oracle_from_specs,
    redundancy_factor,
    summarize_campaign,
)
from repro.traces import (
    CATEGORY_CDN,
    CATEGORY_DYN,
    PopulationConfig,
    TTL_CLASSES,
    by_category,
    generate_population,
)


def human_time(seconds: float) -> str:
    if seconds == float("inf"):
        return "never"
    for unit, size in (("d", 86400.0), ("h", 3600.0), ("m", 60.0)):
        if seconds >= size:
            return f"{seconds / size:.1f} {unit}"
    return f"{seconds:.0f} s"


def main() -> None:
    full = "--full" in sys.argv
    population = generate_population(PopulationConfig(
        regular_per_tld=40, cdn_count=30, dyn_count=30, seed=2006))
    print(f"Probing {len(population)} domains "
          f"({'full Table 1 durations' if full else 'capped demo run'})...\n")
    print("Table 1 measurement parameters:")
    for ttl_class in TTL_CLASSES:
        print(f"  {ttl_class.describe()}")

    prober = DnsDynamicsProber(oracle_from_specs(population),
                               max_probes_per_domain=None if full else 600)
    results = prober.run_campaign(population)
    summaries = summarize_campaign(results)

    print("\nPer-class dynamics (paper §3.2 / Figure 2):")
    header = (f"{'class':>5} {'domains':>8} {'mean freq':>10} "
              f"{'changed %':>10} {'lifetime':>10} {'physical %':>11}")
    print(header)
    paper = {1: ("10%", "200 s"), 2: ("8%", "750 s"), 3: ("3%", "2.5 h"),
             4: ("0.1%", "42 d"), 5: ("0.2%", "500 d")}
    for index, summary in summaries.items():
        expect_freq, expect_life = paper[index]
        print(f"{index:>5} {summary.domains:>8} "
              f"{summary.mean_change_frequency:>9.2%} "
              f"{summary.changed_share:>9.1%} "
              f"{human_time(summary.mean_lifetime):>10} "
              f"{summary.physical_share:>10.1%}"
              f"   (paper: freq {expect_freq}, lifetime {expect_life})")

    print("\nChange causes per class (Figure 2f):")
    for index, summary in summaries.items():
        shares = summary.tally.shares()
        print(f"  class {index}: relocation {shares['relocation']:.0%}, "
              f"growth {shares['growth']:.0%}, "
              f"rotation {shares['rotation']:.0%}  "
              f"({summary.tally.total} changes)")

    print("\nRedundant DNS traffic (paper §3.2: CDN up to 10x, Dyn up to 25x):")
    grouped = by_category(population)
    by_name = {result.name: result for result in results}
    for category in (CATEGORY_CDN, CATEGORY_DYN):
        factors = []
        for domain in grouped[category]:
            result = by_name[domain.name]
            if result.changes == 0:
                continue  # "close to zero" change rate: factor undefined
            if category == CATEGORY_DYN and domain.ttl < 300:
                continue  # paper reports the factor for the TTL>=300 group
            lifetime = (result.probes * result.ttl_class.resolution
                        / result.changes)
            factors.append(redundancy_factor(domain.ttl, lifetime))
        if factors:
            factors.sort()
            print(f"  {category:8s}: median {factors[len(factors) // 2]:6.1f}x,"
                  f" max {factors[-1]:6.1f}x")
    print("\nConclusion (as in the paper): physical changes per domain are "
          "rare, but across the population one happens every minute — and "
          "TTLs are far too small for the real change rates.  Both argue "
          "for server-initiated notification: DNScup.")


if __name__ == "__main__":
    main()
