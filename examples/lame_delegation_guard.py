#!/usr/bin/env python3
"""Preventing lame delegation with DNScup machinery (paper §1).

A child zone renames and renumbers its nameservers — the classic way
delegations go lame, because the parent's NS/glue copies are cached
state nobody refreshes.  The DelegationGuard treats the parent exactly
like a DNScup cache: every change to the child's apex NS set (and its
glue) is pushed up as a dynamic update.

The demo breaks a delegation with the guard detached (resolution
fails), then repeats the same renumbering with the guard attached
(resolution keeps working).

Run:  python examples/lame_delegation_guard.py
"""

from repro.core import DelegationGuard
from repro.dnslib import A, Name, NS, RRSet, RRType, Rcode
from repro.net import Host, Network, Simulator
from repro.server import AuthoritativeServer, RecursiveResolver, ResolverCache
from repro.zone import DelegationStatus, check_delegations, load_zone

ROOT_TEXT = """\
$ORIGIN .
$TTL 86400
.        IN SOA a.root. admin. 1 7200 900 604800 300
.        IN NS a.root.
a.root.  IN A  198.41.0.4
com.     IN NS a.gtld.net.
a.gtld.net. IN A 192.5.6.30
"""

PARENT_TEXT = """\
$ORIGIN com.
$TTL 86400
@           IN SOA a.gtld.net. admin. 1 7200 900 604800 300
@           IN NS a.gtld.net.
shop        IN NS ns1.shop.com.
ns1.shop.com. IN A 10.1.0.1
"""

CHILD_TEXT = """\
$ORIGIN shop.com.
$TTL 300
@    IN SOA ns1 admin 1 7200 900 604800 300
@    IN NS  ns1
ns1  IN A   10.1.0.1
www  IN A   10.0.0.80
"""


def build(guarded: bool):
    simulator = Simulator()
    network = Network(simulator, seed=31)
    AuthoritativeServer(Host(network, "198.41.0.4"),
                        [load_zone(ROOT_TEXT, origin=Name.root())])
    parent_zone = load_zone(PARENT_TEXT)
    AuthoritativeServer(Host(network, "192.5.6.30"), [parent_zone])
    child_zone = load_zone(CHILD_TEXT)
    # The child's server answers on its *current* address; we bind both
    # old and new addresses to the same server (multi-homed during the
    # migration), as real renumberings do.
    child_host = Host(network, "10.1.0.1")
    child_server = AuthoritativeServer(child_host, [child_zone])
    new_host = Host(network, "10.1.0.99")
    new_server = AuthoritativeServer(new_host, [child_zone])
    guard = None
    if guarded:
        guard = DelegationGuard(child_zone, ("192.5.6.30", 53),
                                child_server.socket)
    resolver = RecursiveResolver(Host(network, "10.2.0.1"),
                                 [("198.41.0.4", 53)],
                                 cache=ResolverCache())
    return simulator, network, parent_zone, child_zone, resolver, guard


def renumber(child_zone) -> None:
    """The child migrates its nameserver: new name, new address."""
    with child_zone.bulk_update():
        child_zone.put_rrset(RRSet("shop.com", RRType.NS, 300,
                                   [NS("ns-new.shop.com")]))
        child_zone.put_rrset(RRSet("ns-new.shop.com", RRType.A, 300,
                                   [A("10.1.0.99")]))
        child_zone.delete_rrset("ns1.shop.com", RRType.A)


def resolve(simulator, resolver, name="www.shop.com"):
    results = []
    resolver.resolve(name, RRType.A,
                     lambda recs, rc: results.append((recs, rc)))
    simulator.run()
    records, rcode = results[0]
    addresses = [r.rdata.address for r in records if r.rrtype == RRType.A]
    return addresses, rcode


def status(parent_zone, child_zone):
    reports = check_delegations(parent_zone,
                                {child_zone.origin: child_zone})
    return reports[0].status


def main() -> None:
    print("Scenario: shop.com migrates its nameserver "
          "ns1.shop.com/10.1.0.1 -> ns-new.shop.com/10.1.0.99\n")
    for guarded in (False, True):
        simulator, network, parent_zone, child_zone, resolver, guard = \
            build(guarded)
        renumber(child_zone)
        simulator.run()
        # The old nameserver box is eventually switched off.
        for endpoint in [("10.1.0.1", 53)]:
            network.unbind(endpoint)
            network.unbind_stream(endpoint)
        resolver.cache.flush()
        addresses, rcode = resolve(simulator, resolver)
        state = status(parent_zone, child_zone)
        label = "with DelegationGuard" if guarded else "unguarded"
        print(f"{label:22s}: delegation {state.value:12s} "
              f"resolution -> {addresses or rcode.name}")
        if guard is not None:
            print(f"{'':22s}  (updates pushed: "
                  f"{guard.stats.updates_accepted})")
    print("\nUnguarded, the parent still points at the dead server — a "
          "lame delegation; the guard keeps parent NS+glue consistent, "
          "so resolution survives the migration.")


if __name__ == "__main__":
    main()
